// Command tagserved runs the tagging system as a network service: a
// synthetic corpus is generated (or loaded from a directory persisted
// by taggen/SaveDataset), a live Service is primed over it, and the
// HTTP/JSON front-end of internal/server is exposed on -addr.
//
// Usage:
//
//	tagserved [-addr :8377] [-n 1000] [-seed 1] [-data DIR]
//	          [-shards 0] [-strategy FP-MU] [-budget 0] [-wal DIR]
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests finish, then the WAL (when configured) is flushed and
// closed. The listen address is printed to stderr once the listener is
// bound, so callers binding port 0 can discover the port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	incentivetag "incentivetag"
	"incentivetag/internal/server"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tagserved: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8377", "HTTP listen address")
	n := flag.Int("n", 1000, "resource count of the synthetic corpus")
	seed := flag.Int64("seed", 1, "corpus and strategy seed")
	dataDir := flag.String("data", "", "load a persisted corpus from this directory instead of generating")
	shards := flag.Int("shards", 0, "engine shards (0 = default)")
	stratName := flag.String("strategy", "FP-MU", "incentive allocation strategy")
	budget := flag.Int("budget", 0, "total incentive budget in reward units (0 = unlimited)")
	walDir := flag.String("wal", "", "directory for the durable post log (empty = no WAL)")
	flag.Parse()

	var ds *incentivetag.Dataset
	var err error
	if *dataDir != "" {
		ds, err = incentivetag.LoadDataset(*dataDir)
	} else {
		ds, err = incentivetag.Generate(incentivetag.DefaultConfig(*n, *seed))
	}
	if err != nil {
		fail("corpus: %v", err)
	}
	svc, err := incentivetag.NewService(ds, incentivetag.ServiceOptions{
		Shards:   *shards,
		Strategy: *stratName,
		Seed:     *seed,
		WALDir:   *walDir,
	})
	if err != nil {
		fail("service: %v", err)
	}
	srv, err := server.New(server.Config{
		Service:     svc,
		Strategy:    *stratName,
		TagUniverse: ds.Vocab.Size(),
		Budget:      *budget,
	})
	if err != nil {
		fail("server: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tagserved: serving %d resources (|T|=%d, strategy %s) on %s\n",
		ds.N(), ds.Vocab.Size(), *stratName, l.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tagserved: %v — draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fail("shutdown: %v", err)
		}
		<-done // Serve has returned ErrServerClosed
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fail("serve: %v", err)
		}
	}
	// WAL flush strictly after the last request's write.
	if err := svc.Close(); err != nil {
		fail("close: %v", err)
	}
	m := svc.Snapshot()
	fmt.Fprintf(os.Stderr, "tagserved: stopped — posts=%d quality=%.4f\n", m.Posts, m.MeanQuality)
}
