// Command tagserved runs the tagging system as a network service: a
// synthetic corpus is generated (or loaded from a directory persisted
// by taggen/SaveDataset), a live Service is primed over it, and the
// HTTP/JSON front-end of internal/server is exposed on -addr.
//
// Usage:
//
//	tagserved [-addr :8377] [-n 1000] [-seed 1] [-data DIR]
//	          [-shards 0] [-strategy FP-MU] [-budget 0] [-wal DIR]
//	          [-snap-interval 30s] [-snap-every 0]
//	          [-rate 0] [-burst 0] [-max-inflight 0] [-queue 0]
//	          [-queue-wait 250ms] [-max-body 8388608]
//	          [-max-resident 0] [-max-resident-bytes 0] [-tier-interval 2s]
//	          [-cluster-map FILE -cluster-self NAME]
//
// With -cluster-map/-cluster-self the process joins a sharded cluster
// as the named member of the shard-map file (see internal/cluster and
// cmd/taggate): its allocator and cluster query surface are masked to
// the resources the consistent-hash ring assigns it, /ingest refuses
// non-owned resources with 421 Misdirected Request, and the /cluster/*
// scatter-gather endpoints require the map's hash on every call.
//
// The admission flags make overload a deliberate policy instead of an
// accident: -rate/-burst token-bucket the crowd's bulk ingest (shed
// with 429 + Retry-After when the bucket runs dry), -max-inflight
// bounds concurrently served requests across all routes, and -queue/
// -queue-wait give interactive requests (allocate, complete, expire,
// topk, search) a small bounded wait for a slot before they too are
// shed. The defaults (0) disable both limits. -max-body caps request
// bodies (413 beyond it). GET /metrics/prom exposes the admission
// counters, queue gauges and per-route latency quantiles in Prometheus
// text format. Limits are per process: a fleet behind a balancer
// multiplies them by the replica count.
//
// The residency flags enable memory tiering: -max-resident and
// -max-resident-bytes budget how many resources (and how much estimated
// heap) stay hot; the rest are frozen to compact records and rehydrated
// on touch, a background policy loop (-tier-interval) evicts the
// least-recently-touched back inside the budget, and — combined with
// -wal — a restart boots COLD straight off the mmap'd snapshot instead
// of decoding the corpus into the heap. Answers on every endpoint are
// bit-identical with tiering on or off; /info, /metrics and
// /metrics/prom (tagserved_resident_resources and friends) expose the
// census.
//
// With -wal the service is durable: every acknowledged post is
// group-committed to a segmented log before it mutates engine state, a
// background snapshotter (interval and/or record-count policy) bounds
// both recovery time and on-disk log size, and a restart on the same
// directory RECOVERS — newest valid snapshot plus the log tail — before
// serving. The listener binds immediately so /healthz answers during
// recovery (503 until replay completes, 200 after); every other
// endpoint refuses with 503 until the service is ready.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests finish, then a final snapshot is written and the WAL (when
// configured) is flushed and closed. The listen address is printed to
// stderr once the listener is bound, so callers binding port 0 can
// discover the port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	incentivetag "incentivetag"
	"incentivetag/internal/cluster"
	"incentivetag/internal/server"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tagserved: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8377", "HTTP listen address")
	n := flag.Int("n", 1000, "resource count of the synthetic corpus")
	seed := flag.Int64("seed", 1, "corpus and strategy seed")
	dataDir := flag.String("data", "", "load a persisted corpus from this directory instead of generating")
	shards := flag.Int("shards", 0, "engine shards (0 = default)")
	stratName := flag.String("strategy", "FP-MU", "incentive allocation strategy")
	budget := flag.Int("budget", 0, "total incentive budget in reward units (0 = unlimited)")
	walDir := flag.String("wal", "", "directory for the durable post log + snapshots (empty = no durability)")
	snapInterval := flag.Duration("snap-interval", 30*time.Second, "background snapshot interval (negative disables)")
	snapEvery := flag.Int("snap-every", 0, "also snapshot every this many logged posts (0 = interval only)")
	rate := flag.Float64("rate", 0, "bulk ingest admission rate in requests/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "bulk token-bucket burst (0 = one second's worth)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently served requests across all routes (0 = unlimited)")
	queue := flag.Int("queue", 0, "interactive wait-queue capacity (0 = default, negative = none)")
	queueWait := flag.Duration("queue-wait", 0, "max time a queued interactive request waits for a slot (0 = default)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default 8 MiB)")
	maxResident := flag.Int("max-resident", 0, "max resources kept hot in RAM; the rest tier to compact cold records (0 = unlimited)")
	maxResidentBytes := flag.Int64("max-resident-bytes", 0, "max estimated heap for hot resources (0 = unlimited)")
	tierInterval := flag.Duration("tier-interval", 0, "background tiering policy cadence (0 = default, negative disables the loop)")
	clusterMap := flag.String("cluster-map", "", "shard-map JSON file; makes this node a cluster member (requires -cluster-self)")
	clusterSelf := flag.String("cluster-self", "", "this node's name in the shard map")
	flag.Parse()

	// Cluster membership: the shard map masks the allocator and query
	// surface to owned resources, and the map hash gates /cluster/* RPCs
	// and misdirected ingest (see internal/cluster).
	var owned func(int) bool
	var mapHash string
	if *clusterMap != "" || *clusterSelf != "" {
		if *clusterMap == "" || *clusterSelf == "" {
			fail("-cluster-map and -cluster-self must be set together")
		}
		m, err := cluster.LoadMap(*clusterMap)
		if err != nil {
			fail("%v", err)
		}
		owned, err = m.OwnedBy(*clusterSelf)
		if err != nil {
			fail("%v", err)
		}
		mapHash = m.Hash()
		fmt.Fprintf(os.Stderr, "tagserved: cluster member %q of %d nodes (map hash %s)\n",
			*clusterSelf, len(m.Nodes), mapHash)
	}

	srv, err := server.NewDeferred(server.Config{
		ShardMapHash: mapHash,
		Strategy:     *stratName,
		Budget:       *budget,
		Admission: incentivetag.AdmissionConfig{
			Rate:        *rate,
			Burst:       *burst,
			MaxInFlight: *maxInflight,
			Queue:       *queue,
			QueueWait:   *queueWait,
		},
		MaxBodyBytes: *maxBody,
	})
	if err != nil {
		fail("server: %v", err)
	}

	// Bind before the (possibly long) corpus load and WAL recovery:
	// /healthz answers 503 throughout, so restart scripts can wait on
	// readiness instead of racing the replay.
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tagserved: listening on %s (recovering)\n", l.Addr())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	var ds *incentivetag.Dataset
	if *dataDir != "" {
		ds, err = incentivetag.LoadDataset(*dataDir)
	} else {
		ds, err = incentivetag.Generate(incentivetag.DefaultConfig(*n, *seed))
	}
	if err != nil {
		fail("corpus: %v", err)
	}
	svc, err := incentivetag.NewService(ds, incentivetag.ServiceOptions{
		Shards:               *shards,
		Strategy:             *stratName,
		Seed:                 *seed,
		WALDir:               *walDir,
		SnapshotInterval:     *snapInterval,
		SnapshotEvery:        *snapEvery,
		Owned:                owned,
		MaxResidentResources: *maxResident,
		MaxResidentBytes:     *maxResidentBytes,
		TierInterval:         *tierInterval,
	})
	if err != nil {
		fail("service: %v", err)
	}
	if err := srv.Install(svc, ds.Vocab.Size()); err != nil {
		fail("install: %v", err)
	}
	rec := svc.RecoveryStats()
	if rec.Recovered {
		fmt.Fprintf(os.Stderr, "tagserved: recovered %d posts (snapshot seq %d, %d records replayed, %d KiB read) in %d ms\n",
			rec.RecoveredPosts, rec.SnapshotSeq, rec.ReplayedRecords, rec.ReplayBytes>>10, rec.ReplayMillis)
	}
	fmt.Fprintf(os.Stderr, "tagserved: serving %d resources (|T|=%d, strategy %s) on %s\n",
		ds.N(), ds.Vocab.Size(), *stratName, l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tagserved: %v — draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fail("shutdown: %v", err)
		}
		<-done // Serve has returned ErrServerClosed
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fail("serve: %v", err)
		}
	}
	// Final snapshot + WAL flush strictly after the last request's write.
	if err := svc.Close(); err != nil {
		fail("close: %v", err)
	}
	m := svc.Snapshot()
	fmt.Fprintf(os.Stderr, "tagserved: stopped — posts=%d quality=%.4f\n", m.Posts, m.MeanQuality)
}
