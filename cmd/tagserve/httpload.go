// HTTP load-generator mode: instead of driving an in-process Service,
// tagserve -url http://... drives a running tagserved over its JSON API
// the way a crowd of networked workers would — concurrent batched
// ingest, then a concurrent allocate/complete/expire swarm — and
// reports end-to-end ingest posts/sec and allocations/sec.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"incentivetag/internal/server"
)

// httpSummary is the JSON report of one load-generation run.
type httpSummary struct {
	URL     string `json:"url"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	Batch   int    `json:"batch"`

	OrganicPosts   int     `json:"organic_posts"`
	OrganicMillis  int64   `json:"organic_ms"`
	PostsPerSecond float64 `json:"posts_per_sec"`

	// Mixed read/write load (-query): GET /topk and GET /search traffic
	// served concurrently with the ingest phase.
	QueryWorkers  int     `json:"query_workers,omitempty"`
	Queries       int64   `json:"queries,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`

	Fulfilled         int     `json:"fulfilled_tasks"`
	Expired           int     `json:"expired_tasks"`
	AllocateMillis    int64   `json:"allocate_ms"`
	AllocationsPerSec float64 `json:"allocations_per_sec"`

	FinalPosts          int     `json:"final_posts"`
	FinalMeanQuality    float64 `json:"final_mean_quality"`
	FinalOverTagged     int     `json:"final_over_tagged"`
	FinalUnderTaggedPct float64 `json:"final_under_tagged_pct"`
	FinalWastedPosts    int     `json:"final_wasted_posts"`
	LeasesOutstanding   int     `json:"leases_outstanding"`
}

type httpClient struct {
	base string
	hc   *http.Client
}

func (c *httpClient) post(path string, body, out any) error {
	enc, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(enc))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func (c *httpClient) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// randomPost synthesizes a 1–3 tag worker post over the advertised tag
// universe. Real workers restate a resource's topical vocabulary;
// random tags are the adversarial version of that — fine for load, and
// quality still reflects the primed corpus state.
func randomPost(rng *rand.Rand, universe int) []int32 {
	k := 1 + rng.Intn(3)
	out := make([]int32, 0, k)
	for len(out) < k {
		out = append(out, int32(rng.Intn(universe)))
	}
	return out
}

// awaitReady polls /healthz until the server reports ready — a freshly
// restarted tagserved may still be replaying its WAL, and driving load
// before the gate flips would only collect 503s (or, worse, race a
// restart script's recovery assertions).
func (c *httpClient) awaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var h server.HealthResponse
		err := c.get("/healthz", &h)
		if err == nil && h.Ready {
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("server not ready")
			}
			return fmt.Errorf("tagserve: /healthz never became ready within %v: %w", timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runHTTPLoad drives a remote tagserved. posts is the organic ingest
// volume; budget the number of incentive tasks to complete; query the
// number of concurrent GET /topk + GET /search workers running for the
// whole organic phase (the mixed read/write workload); expireFrac in
// [0,1) the fraction of leases abandoned instead of fulfilled.
func runHTTPLoad(url string, workers, batch, posts, budget, query int, expireFrac float64, seed int64) {
	c := &httpClient{base: url, hc: &http.Client{Timeout: 30 * time.Second}}
	if err := c.awaitReady(60 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	var info server.InfoResponse
	if err := c.get("/info", &info); err != nil {
		fmt.Fprintf(os.Stderr, "tagserve: %v\n", err)
		os.Exit(1)
	}
	if info.N == 0 || info.TagUniverse == 0 {
		fmt.Fprintf(os.Stderr, "tagserve: server advertises n=%d |T|=%d; cannot generate load\n", info.N, info.TagUniverse)
		os.Exit(1)
	}
	out := httpSummary{URL: url, N: info.N, Workers: workers, Batch: batch}

	failed := func(err error) {
		fmt.Fprintf(os.Stderr, "tagserve: %v\n", err)
		os.Exit(1)
	}

	// Mixed read workload: -query workers alternate GET /topk and
	// GET /search for the duration of the organic phase.
	var queries atomic.Int64
	stopQuery := make(chan struct{})
	var queryWG sync.WaitGroup
	if query > 0 && posts > 0 {
		for w := 0; w < query; w++ {
			queryWG.Add(1)
			go func(w int) {
				defer queryWG.Done()
				rng := rand.New(rand.NewSource(seed + 5000 + int64(w)))
				for q := 0; ; q++ {
					select {
					case <-stopQuery:
						return
					default:
					}
					var err error
					if q%2 == 0 {
						var tk server.TopKResponse
						err = c.get(fmt.Sprintf("/topk?resource=%d&k=10", rng.Intn(info.N)), &tk)
					} else {
						var sr server.SearchResponse
						ts := randomPost(rng, info.TagUniverse)
						path := fmt.Sprintf("/search?tags=%d", ts[0])
						for _, tg := range ts[1:] {
							path += fmt.Sprintf(",%d", tg)
						}
						err = c.get(path+"&k=10", &sr)
					}
					if err != nil {
						failed(err)
					}
					queries.Add(1)
				}
			}(w)
		}
	}

	// Organic phase: each worker ingests batches over its own resource
	// stripe with its own deterministic RNG. Batches are claimed from a
	// shared quota counter *before* they are sent, so the run ingests
	// exactly -posts posts no matter how workers interleave.
	if posts > 0 {
		var claimed, ingested atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)))
				buf := make([]server.IngestEvent, 0, batch)
				r := w % info.N
				for {
					from := claimed.Add(int64(batch)) - int64(batch)
					if from >= int64(posts) {
						return
					}
					want := batch
					if left := posts - int(from); left < want {
						want = left
					}
					buf = buf[:0]
					for k := 0; k < want; k++ {
						buf = append(buf, server.IngestEvent{Resource: r, Tags: randomPost(rng, info.TagUniverse)})
						r = (r + workers) % info.N
					}
					if err := c.post("/ingest", server.IngestRequest{Events: buf}, nil); err != nil {
						failed(err)
					}
					ingested.Add(int64(len(buf)))
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		// Stop the query swarm before reading its counter so the count
		// matches the elapsed window (at most one in-flight request per
		// worker drains past the cut).
		close(stopQuery)
		queryWG.Wait()
		out.OrganicPosts = int(ingested.Load())
		out.OrganicMillis = elapsed.Milliseconds()
		out.PostsPerSecond = float64(ingested.Load()) / elapsed.Seconds()
		out.QueryWorkers = query
		out.Queries = queries.Load()
		out.QueriesPerSec = float64(queries.Load()) / elapsed.Seconds()
	}

	// Incentive phase: a concurrent allocate/complete/expire swarm.
	// Allocations/sec counts settled leases (fulfilled + expired) per
	// wall-clock second across all workers.
	if budget > 0 {
		var claimed, fulfilled, expired atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + 1000 + int64(w)))
				for {
					// Claim a fulfillment slot up front (released again on
					// expiry), so exactly budget tasks are completed.
					if claimed.Add(1) > int64(budget) {
						return
					}
					var al server.AllocateResponse
					if err := c.post("/allocate", server.AllocateRequest{}, &al); err != nil {
						failed(err)
					}
					if !al.OK {
						return // budget spent server-side or nothing allocatable
					}
					if rng.Float64() < expireFrac {
						if err := c.post("/expire", server.ExpireRequest{Lease: al.Lease}, nil); err != nil {
							failed(err)
						}
						expired.Add(1)
						claimed.Add(-1) // abandoned: the slot goes back
						continue
					}
					if err := c.post("/complete", server.CompleteRequest{
						Lease: al.Lease, Tags: randomPost(rng, info.TagUniverse),
					}, nil); err != nil {
						failed(err)
					}
					fulfilled.Add(1)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		out.Fulfilled = int(fulfilled.Load())
		out.Expired = int(expired.Load())
		out.AllocateMillis = elapsed.Milliseconds()
		out.AllocationsPerSec = float64(fulfilled.Load()+expired.Load()) / elapsed.Seconds()
	}

	var m server.MetricsResponse
	if err := c.get("/metrics", &m); err != nil {
		failed(err)
	}
	out.FinalPosts = m.Posts
	out.FinalMeanQuality = m.MeanQuality
	out.FinalOverTagged = m.OverTagged
	out.FinalUnderTaggedPct = m.UnderTaggedPct
	out.FinalWastedPosts = m.WastedPosts
	out.LeasesOutstanding = m.LeasesOutstanding

	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		failed(err)
	}
	fmt.Println(string(enc))
	if out.FinalMeanQuality <= 0 {
		fmt.Fprintf(os.Stderr, "tagserve: FAIL: mean quality %g not positive after load\n", out.FinalMeanQuality)
		os.Exit(1)
	}
}
