// HTTP load-generator mode: instead of driving an in-process Service,
// tagserve -url http://... drives a running tagserved over its JSON API
// the way a crowd of networked workers would — concurrent batched
// ingest, then a concurrent allocate/complete/expire swarm — and
// reports end-to-end ingest posts/sec and allocations/sec.
//
// The client is a well-behaved citizen of an admission-controlled
// server: a 429 is not an error but back-pressure. It honors the
// server's Retry-After, layers jittered exponential backoff on top,
// retries a bounded number of times, and reports what fraction of its
// traffic was shed (and how many operations it ultimately dropped) in
// the summary — so an overloaded run degrades gracefully instead of
// dying on the first shed request.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incentivetag/internal/server"
)

// httpSummary is the JSON report of one load-generation run.
type httpSummary struct {
	URL     string `json:"url"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	Batch   int    `json:"batch"`

	OrganicPosts   int     `json:"organic_posts"`
	OrganicMillis  int64   `json:"organic_ms"`
	PostsPerSecond float64 `json:"posts_per_sec"`

	// Mixed read/write load (-query): GET /topk and GET /search traffic
	// served concurrently with the ingest phase.
	QueryWorkers  int     `json:"query_workers,omitempty"`
	Queries       int64   `json:"queries,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`

	Fulfilled         int     `json:"fulfilled_tasks"`
	Expired           int     `json:"expired_tasks"`
	AllocateMillis    int64   `json:"allocate_ms"`
	AllocationsPerSec float64 `json:"allocations_per_sec"`

	FinalPosts          int     `json:"final_posts"`
	FinalMeanQuality    float64 `json:"final_mean_quality"`
	FinalOverTagged     int     `json:"final_over_tagged"`
	FinalUnderTaggedPct float64 `json:"final_under_tagged_pct"`
	FinalWastedPosts    int     `json:"final_wasted_posts"`
	LeasesOutstanding   int     `json:"leases_outstanding"`

	// Admission is the client-side view of the server's load shedding:
	// present whenever the run sent serving-route traffic.
	Admission *admissionSummary `json:"admission,omitempty"`
}

// admissionSummary reports the back-pressure the run experienced.
// Requests counts every HTTP request sent to a serving route (retries
// included); ShedRate is Shed429/Requests; Dropped counts operations
// abandoned after exhausting their retry budget.
type admissionSummary struct {
	Requests int64            `json:"requests"`
	Shed429  int64            `json:"shed_429"`
	Retries  int64            `json:"retries"`
	Dropped  int64            `json:"dropped"`
	ShedRate float64          `json:"shed_rate"`
	PerRoute map[string]int64 `json:"per_route,omitempty"`
}

// Retry policy: bounded attempts, exponential floor, Retry-After
// honored, ±50% jitter, hard cap per wait.
const (
	maxAttempts  = 5
	retryBase    = 50 * time.Millisecond
	retryWaitCap = 5 * time.Second
)

// errDropped marks an operation shed on every attempt; callers count
// it and move on instead of aborting the run.
var errDropped = errors.New("shed by admission control on every retry")

type httpClient struct {
	base string
	hc   *http.Client

	requests atomic.Int64 // serving-route requests sent, retries included
	shed     atomic.Int64 // 429 responses received
	retries  atomic.Int64
	dropped  atomic.Int64

	mu       sync.Mutex
	perRoute map[string]int64
}

func newHTTPClient(base string) *httpClient {
	return &httpClient{
		base:     base,
		hc:       &http.Client{Timeout: 30 * time.Second},
		perRoute: make(map[string]int64),
	}
}

// servingRoute returns the admission-controlled route for a request
// path ("" for ops endpoints, which are neither counted nor retried).
func servingRoute(path string) string {
	route := path
	if i := strings.IndexByte(route, '?'); i >= 0 {
		route = route[:i]
	}
	switch route {
	case "/ingest", "/allocate", "/complete", "/expire", "/topk", "/search":
		return route
	}
	return ""
}

// count records one request sent to a serving route.
func (c *httpClient) count(route string) {
	c.requests.Add(1)
	c.mu.Lock()
	c.perRoute[route]++
	c.mu.Unlock()
}

// backoff computes the wait before retry attempt (0-based): the larger
// of the server's Retry-After and the exponential floor, jittered by
// ±50% so a shed swarm does not retry in lockstep, capped.
func backoff(retryAfter string, attempt int) time.Duration {
	wait := retryBase << uint(attempt)
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		if ra := time.Duration(secs) * time.Second; ra > wait {
			wait = ra
		}
	}
	if wait > retryWaitCap {
		wait = retryWaitCap
	}
	return time.Duration(float64(wait) * (0.5 + rand.Float64()))
}

// doJSON issues one request (POST when body is non-nil, GET otherwise)
// with admission-aware retry on serving routes: a 429 is back-pressure,
// not failure — wait out the server's Retry-After (plus jitter) and try
// again, up to maxAttempts; errDropped after that.
func (c *httpClient) doJSON(path string, body, out any) error {
	var enc []byte
	if body != nil {
		var err error
		if enc, err = json.Marshal(body); err != nil {
			return err
		}
	}
	route := servingRoute(path)
	attempts := maxAttempts
	if route == "" {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if route != "" {
			c.count(route)
		}
		var resp *http.Response
		var err error
		if body != nil {
			resp, err = c.hc.Post(c.base+path, "application/json", bytes.NewReader(enc))
		} else {
			resp, err = c.hc.Get(c.base + path)
		}
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && route != "" {
			retryAfter := resp.Header.Get("Retry-After")
			resp.Body.Close()
			c.shed.Add(1)
			if attempt == attempts-1 {
				break
			}
			c.retries.Add(1)
			time.Sleep(backoff(retryAfter, attempt))
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var e server.ErrorResponse
			json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, e.Error)
		}
		if out != nil {
			err = json.NewDecoder(resp.Body).Decode(out)
		}
		resp.Body.Close()
		return err
	}
	c.dropped.Add(1)
	return fmt.Errorf("%s: %w", path, errDropped)
}

func (c *httpClient) post(path string, body, out any) error {
	if body == nil {
		body = struct{}{}
	}
	return c.doJSON(path, body, out)
}

func (c *httpClient) get(path string, out any) error {
	return c.doJSON(path, nil, out)
}

// admissionSnapshot builds the summary block (nil if the run never
// touched a serving route).
func (c *httpClient) admissionSnapshot() *admissionSummary {
	reqs := c.requests.Load()
	if reqs == 0 {
		return nil
	}
	c.mu.Lock()
	per := make(map[string]int64, len(c.perRoute))
	for k, v := range c.perRoute {
		per[k] = v
	}
	c.mu.Unlock()
	return &admissionSummary{
		Requests: reqs,
		Shed429:  c.shed.Load(),
		Retries:  c.retries.Load(),
		Dropped:  c.dropped.Load(),
		ShedRate: float64(c.shed.Load()) / float64(reqs),
		PerRoute: per,
	}
}

// randomPost synthesizes a 1–3 tag worker post over the advertised tag
// universe. Real workers restate a resource's topical vocabulary;
// random tags are the adversarial version of that — fine for load, and
// quality still reflects the primed corpus state.
func randomPost(rng *rand.Rand, universe int) []int32 {
	k := 1 + rng.Intn(3)
	out := make([]int32, 0, k)
	for len(out) < k {
		out = append(out, int32(rng.Intn(universe)))
	}
	return out
}

// awaitReady polls /healthz until the server reports ready — a freshly
// restarted tagserved may still be replaying its WAL, and driving load
// before the gate flips would only collect 503s (or, worse, race a
// restart script's recovery assertions).
func (c *httpClient) awaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var h server.HealthResponse
		err := c.get("/healthz", &h)
		if err == nil && h.Ready {
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("server not ready")
			}
			return fmt.Errorf("tagserve: /healthz never became ready within %v: %w", timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runHTTPLoad drives a remote tagserved. posts is the organic ingest
// volume; budget the number of incentive tasks to complete; query the
// number of concurrent GET /topk + GET /search workers running for the
// whole organic phase (the mixed read/write workload); expireFrac in
// [0,1) the fraction of leases abandoned instead of fulfilled.
func runHTTPLoad(url string, workers, batch, posts, budget, query int, expireFrac float64, seed int64) {
	c := newHTTPClient(url)
	if err := c.awaitReady(60 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	var info server.InfoResponse
	if err := c.get("/info", &info); err != nil {
		fmt.Fprintf(os.Stderr, "tagserve: %v\n", err)
		os.Exit(1)
	}
	if info.N == 0 || info.TagUniverse == 0 {
		fmt.Fprintf(os.Stderr, "tagserve: server advertises n=%d |T|=%d; cannot generate load\n", info.N, info.TagUniverse)
		os.Exit(1)
	}
	out := httpSummary{URL: url, N: info.N, Workers: workers, Batch: batch}

	failed := func(err error) {
		fmt.Fprintf(os.Stderr, "tagserve: %v\n", err)
		os.Exit(1)
	}

	// Mixed read workload: -query workers alternate GET /topk and
	// GET /search for the duration of the organic phase.
	var queries atomic.Int64
	stopQuery := make(chan struct{})
	var queryWG sync.WaitGroup
	if query > 0 && posts > 0 {
		for w := 0; w < query; w++ {
			queryWG.Add(1)
			go func(w int) {
				defer queryWG.Done()
				rng := rand.New(rand.NewSource(seed + 5000 + int64(w)))
				for q := 0; ; q++ {
					select {
					case <-stopQuery:
						return
					default:
					}
					var err error
					if q%2 == 0 {
						var tk server.TopKResponse
						err = c.get(fmt.Sprintf("/topk?resource=%d&k=10", rng.Intn(info.N)), &tk)
					} else {
						var sr server.SearchResponse
						ts := randomPost(rng, info.TagUniverse)
						path := fmt.Sprintf("/search?tags=%d", ts[0])
						for _, tg := range ts[1:] {
							path += fmt.Sprintf(",%d", tg)
						}
						err = c.get(path+"&k=10", &sr)
					}
					if errors.Is(err, errDropped) {
						continue // shed: counted in the admission summary
					}
					if err != nil {
						failed(err)
					}
					queries.Add(1)
				}
			}(w)
		}
	}

	// Organic phase: each worker ingests batches over its own resource
	// stripe with its own deterministic RNG. Batches are claimed from a
	// shared quota counter *before* they are sent, so the run ingests
	// exactly -posts posts no matter how workers interleave.
	if posts > 0 {
		var claimed, ingested atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)))
				buf := make([]server.IngestEvent, 0, batch)
				r := w % info.N
				for {
					from := claimed.Add(int64(batch)) - int64(batch)
					if from >= int64(posts) {
						return
					}
					want := batch
					if left := posts - int(from); left < want {
						want = left
					}
					buf = buf[:0]
					for k := 0; k < want; k++ {
						buf = append(buf, server.IngestEvent{Resource: r, Tags: randomPost(rng, info.TagUniverse)})
						r = (r + workers) % info.N
					}
					if err := c.post("/ingest", server.IngestRequest{Events: buf}, nil); err != nil {
						if errors.Is(err, errDropped) {
							continue // batch shed: the summary reports the drop
						}
						failed(err)
					}
					ingested.Add(int64(len(buf)))
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		// Stop the query swarm before reading its counter so the count
		// matches the elapsed window (at most one in-flight request per
		// worker drains past the cut).
		close(stopQuery)
		queryWG.Wait()
		out.OrganicPosts = int(ingested.Load())
		out.OrganicMillis = elapsed.Milliseconds()
		out.PostsPerSecond = float64(ingested.Load()) / elapsed.Seconds()
		out.QueryWorkers = query
		out.Queries = queries.Load()
		out.QueriesPerSec = float64(queries.Load()) / elapsed.Seconds()
	}

	// Incentive phase: a concurrent allocate/complete/expire swarm.
	// Allocations/sec counts settled leases (fulfilled + expired) per
	// wall-clock second across all workers.
	if budget > 0 {
		var claimed, fulfilled, expired atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + 1000 + int64(w)))
				for {
					// Claim a fulfillment slot up front (released again on
					// expiry), so exactly budget tasks are completed.
					if claimed.Add(1) > int64(budget) {
						return
					}
					var al server.AllocateResponse
					if err := c.post("/allocate", server.AllocateRequest{}, &al); err != nil {
						if errors.Is(err, errDropped) {
							continue // allocation shed: the task slot is forfeited
						}
						failed(err)
					}
					if !al.OK {
						return // budget spent server-side or nothing allocatable
					}
					if rng.Float64() < expireFrac {
						if err := c.post("/expire", server.ExpireRequest{Lease: al.Lease}, nil); err != nil {
							if errors.Is(err, errDropped) {
								continue // lease left to the server's expiry sweep
							}
							failed(err)
						}
						expired.Add(1)
						claimed.Add(-1) // abandoned: the slot goes back
						continue
					}
					if err := c.post("/complete", server.CompleteRequest{
						Lease: al.Lease, Tags: randomPost(rng, info.TagUniverse),
					}, nil); err != nil {
						if errors.Is(err, errDropped) {
							continue // lease left outstanding; reported below
						}
						failed(err)
					}
					fulfilled.Add(1)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		out.Fulfilled = int(fulfilled.Load())
		out.Expired = int(expired.Load())
		out.AllocateMillis = elapsed.Milliseconds()
		out.AllocationsPerSec = float64(fulfilled.Load()+expired.Load()) / elapsed.Seconds()
	}

	var m server.MetricsResponse
	if err := c.get("/metrics", &m); err != nil {
		failed(err)
	}
	out.FinalPosts = m.Posts
	out.FinalMeanQuality = m.MeanQuality
	out.FinalOverTagged = m.OverTagged
	out.FinalUnderTaggedPct = m.UnderTaggedPct
	out.FinalWastedPosts = m.WastedPosts
	out.LeasesOutstanding = m.LeasesOutstanding
	out.Admission = c.admissionSnapshot()
	if ad := out.Admission; ad != nil && ad.Shed429 > 0 {
		fmt.Fprintf(os.Stderr, "tagserve: server shed %.1f%% of %d requests (%d retries, %d ops dropped)\n",
			100*ad.ShedRate, ad.Requests, ad.Retries, ad.Dropped)
	}

	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		failed(err)
	}
	fmt.Println(string(enc))
	if out.FinalMeanQuality <= 0 {
		fmt.Fprintf(os.Stderr, "tagserve: FAIL: mean quality %g not positive after load\n", out.FinalMeanQuality)
		os.Exit(1)
	}
}
