// Command tagserve drives the live tagging Service the way a serving
// deployment would see traffic: many goroutines stream organic posts
// into the sharded engine concurrently, an optional allocation loop
// spends an incentive budget through Allocate/Complete at the same
// time, and aggregate metrics are sampled live — each sample an O(1)
// read, never a corpus scan.
//
// Usage:
//
//	tagserve [-n 1000] [-workers 8] [-shards 0] [-batch 256] [-posts 0]
//	         [-budget 0] [-strategy FP-MU] [-wal DIR] [-seed 1]
//	         [-query 0] [-report 250ms]
//	tagserve -url http://127.0.0.1:8377 [-workers 8] [-batch 64]
//	         [-posts N] [-budget B] [-query 0] [-expire-frac 0.1] [-seed 1]
//
// With -url the program becomes a network load generator against a
// running tagserved (see httpload.go): concurrent batched /ingest
// traffic, then a concurrent /allocate → /complete (or /expire) swarm,
// reporting posts/sec and allocations/sec plus the server's final
// /metrics snapshot. Against an admission-controlled server the client
// backs off on 429 (honoring Retry-After with jittered exponential
// retry) and the summary gains an "admission" block reporting the shed
// rate and per-route request counts. Without -url it drives an
// in-process Service:
//
// -query N runs the mixed read/write workload: N query goroutines
// alternate top-k similar-resource queries and tag-set searches against
// the live online index for the whole organic phase, concurrently with
// every ingest worker, and the summary reports queries/sec alongside
// posts/sec (in HTTP mode the queries go over GET /topk and
// GET /search).
//
// Workers buffer up to -batch posts from their resource stripe and hand
// them to the engine through IngestMany — one shard-lock acquisition and
// one group-committed WAL write per shard per batch (-batch 1 falls back
// to per-post Ingest). -posts caps the organic ingest volume (0 = every
// recorded future post); -budget > 0 additionally runs the incentive
// loop after the organic phase. The run summary — including end-of-run
// ingest throughput and runtime.MemStats allocation counters, so
// load-driver runs are comparable across PRs — is printed to stdout as
// JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	incentivetag "incentivetag"
)

type summary struct {
	N       int `json:"n"`
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	Batch   int `json:"batch"`

	OrganicPosts   int     `json:"organic_posts"`
	OrganicMillis  int64   `json:"organic_ms"`
	PostsPerSecond float64 `json:"posts_per_sec"`

	// Mixed read/write load (-query): live top-k/search queries served
	// concurrently with the organic ingest phase.
	QueryWorkers   int     `json:"query_workers,omitempty"`
	Queries        int64   `json:"queries,omitempty"`
	QueriesPerSec  float64 `json:"queries_per_sec,omitempty"`
	FinalQueryView uint64  `json:"final_query_epoch,omitempty"`

	// Process-wide allocation deltas over the organic phase
	// (runtime.MemStats), normalized per ingested post. With -query > 0
	// the queries run in the same process and window, so these also
	// carry the query-side allocations — compare ingest-only runs with
	// -query 0.
	AllocBytesPerPost float64 `json:"alloc_bytes_per_post"`
	AllocsPerPost     float64 `json:"allocs_per_post"`
	GCCycles          uint32  `json:"gc_cycles"`

	AllocatedTasks int   `json:"allocated_tasks"`
	AllocateMillis int64 `json:"allocate_ms"`

	FinalMeanQuality    float64 `json:"final_mean_quality"`
	FinalOverTagged     int     `json:"final_over_tagged"`
	FinalUnderTaggedPct float64 `json:"final_under_tagged_pct"`
	FinalWastedPosts    int     `json:"final_wasted_posts"`
	WALDir              string  `json:"wal_dir,omitempty"`
}

func main() {
	n := flag.Int("n", 1000, "resource count of the synthetic corpus")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent ingest goroutines")
	shards := flag.Int("shards", 0, "engine shards (0 = default)")
	batch := flag.Int("batch", 256, "posts per IngestMany batch (1 = per-post Ingest)")
	posts := flag.Int("posts", 0, "organic posts to ingest (0 = all recorded future posts)")
	budget := flag.Int("budget", 0, "incentive budget to spend after the organic phase")
	stratName := flag.String("strategy", "FP-MU", "allocation strategy for -budget")
	walDir := flag.String("wal", "", "directory for the durable post log (empty = no WAL)")
	seed := flag.Int64("seed", 1, "corpus and strategy seed")
	report := flag.Duration("report", 250*time.Millisecond, "live metric sampling interval")
	queryWorkers := flag.Int("query", 0, "concurrent query goroutines (mixed read/write load; 0 = write-only)")
	url := flag.String("url", "", "drive a running tagserved at this base URL instead of an in-process Service")
	expireFrac := flag.Float64("expire-frac", 0, "fraction of leased tasks to abandon via /expire (HTTP mode)")
	flag.Parse()

	if *url != "" {
		runHTTPLoad(*url, *workers, *batch, *posts, *budget, *queryWorkers, *expireFrac, *seed)
		return
	}

	ds, err := incentivetag.Generate(incentivetag.DefaultConfig(*n, *seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagserve: corpus: %v\n", err)
		os.Exit(1)
	}
	svc, err := incentivetag.NewService(ds, incentivetag.ServiceOptions{
		Shards:   *shards,
		Strategy: *stratName,
		Seed:     *seed,
		WALDir:   *walDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagserve: service: %v\n", err)
		os.Exit(1)
	}
	defer svc.Close()

	// next[i] is the cursor into resource i's recorded sequence; organic
	// workers and the allocation loop claim posts through it atomically.
	next := make([]int64, ds.N())
	total := 0
	for i := range next {
		next[i] = int64(ds.Resources[i].Initial)
		total += len(ds.Resources[i].Seq) - ds.Resources[i].Initial
	}
	organicCap := total
	if *posts > 0 && *posts < organicCap {
		organicCap = *posts
	}
	claim := func(i int) (incentivetag.Post, bool) {
		k := atomic.AddInt64(&next[i], 1) - 1
		seq := ds.Resources[i].Seq
		if int(k) >= len(seq) {
			// Converged resource: a live tagger restates the stable
			// vocabulary (replay of the final recorded post).
			return seq[len(seq)-1], false
		}
		return seq[k], true
	}

	// Live metric sampler: concurrent O(1) snapshots while ingest runs.
	stopReport := make(chan struct{})
	var reportWG sync.WaitGroup
	if *report > 0 {
		reportWG.Add(1)
		go func() {
			defer reportWG.Done()
			tick := time.NewTicker(*report)
			defer tick.Stop()
			for {
				select {
				case <-stopReport:
					return
				case <-tick.C:
					m := svc.Snapshot()
					fmt.Fprintf(os.Stderr, "tagserve: posts=%d quality=%.4f over=%d under=%.1f%% wasted=%d\n",
						m.Posts, m.MeanQuality, m.OverTagged, 100*m.UnderTaggedPct, m.WastedPosts)
				}
			}
		}()
	}

	// Mixed read workload: -query goroutines alternate top-k and
	// tag-set search queries against the live online index for the whole
	// organic phase. Each query is an epoch-consistent read served
	// concurrently with the sharded ingest — never a corpus rebuild.
	var queries int64
	stopQuery := make(chan struct{})
	var queryWG sync.WaitGroup
	for w := 0; w < *queryWorkers; w++ {
		queryWG.Add(1)
		go func(w int) {
			defer queryWG.Done()
			rng := rand.New(rand.NewSource(*seed + 7000 + int64(w)))
			universe := ds.Vocab.Size()
			for q := 0; ; q++ {
				select {
				case <-stopQuery:
					return
				default:
				}
				if q%2 == 0 {
					if _, _, err := svc.TopK(rng.Intn(ds.N()), 10); err != nil {
						fmt.Fprintf(os.Stderr, "tagserve: topk: %v\n", err)
						os.Exit(1)
					}
				} else {
					m := 1 + rng.Intn(3)
					ids := make([]incentivetag.Tag, m)
					for j := range ids {
						ids[j] = incentivetag.Tag(rng.Intn(universe))
					}
					p, err := incentivetag.NewPost(ids...)
					if err != nil {
						fmt.Fprintf(os.Stderr, "tagserve: search query: %v\n", err)
						os.Exit(1)
					}
					if _, _, err := svc.Search(p, 10); err != nil {
						fmt.Fprintf(os.Stderr, "tagserve: search: %v\n", err)
						os.Exit(1)
					}
				}
				atomic.AddInt64(&queries, 1)
			}
		}(w)
	}

	// Organic phase: workers stream recorded posts across their resource
	// stripes, buffering up to -batch events per IngestMany call, until
	// the cap is hit or the replay is exhausted. Striping by resource
	// keeps each resource's post order intact regardless of how workers
	// interleave.
	var ingested int64
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// reserve takes one unit of the organic quota, exactly
			// (workers never overshoot the -posts cap).
			reserve := func() bool {
				for {
					cur := atomic.LoadInt64(&ingested)
					if cur >= int64(organicCap) {
						return false
					}
					if atomic.CompareAndSwapInt64(&ingested, cur, cur+1) {
						return true
					}
				}
			}
			buf := make([]incentivetag.PostEvent, 0, *batch)
			flush := func() {
				if len(buf) == 0 {
					return
				}
				if err := svc.IngestMany(buf); err != nil {
					fmt.Fprintf(os.Stderr, "tagserve: ingest: %v\n", err)
					os.Exit(1)
				}
				buf = buf[:0]
			}
			for {
				progress := false
				for i := w; i < ds.N(); i += *workers {
					p, ok := claim(i)
					if !ok {
						continue
					}
					if !reserve() {
						flush()
						return
					}
					if *batch <= 1 {
						if err := svc.Ingest(i, p); err != nil {
							fmt.Fprintf(os.Stderr, "tagserve: ingest: %v\n", err)
							os.Exit(1)
						}
					} else {
						buf = append(buf, incentivetag.PostEvent{Resource: i, Post: p})
						if len(buf) >= *batch {
							flush()
						}
					}
					progress = true
				}
				if !progress {
					flush()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	organicElapsed := time.Since(start)
	// Stop the query swarm before sampling MemStats so post-phase
	// queries cannot leak into the allocation counters; at most one
	// in-flight query per worker drains past the elapsed cut.
	close(stopQuery)
	queryWG.Wait()
	runtime.ReadMemStats(&m1)

	// Incentive phase: single allocation loop over the live engine.
	allocated := 0
	var allocElapsed time.Duration
	if *budget > 0 {
		t0 := time.Now()
		for remaining := *budget; remaining > 0; {
			i, ok := svc.Allocate(remaining)
			if !ok {
				break
			}
			p, _ := claim(i)
			if err := svc.Complete(i, p); err != nil {
				fmt.Fprintf(os.Stderr, "tagserve: complete: %v\n", err)
				os.Exit(1)
			}
			allocated++
			remaining--
		}
		allocElapsed = time.Since(t0)
	}

	close(stopReport)
	reportWG.Wait()

	m := svc.Snapshot()
	out := summary{
		N:                   ds.N(),
		Workers:             *workers,
		Shards:              *shards,
		Batch:               *batch,
		OrganicPosts:        int(ingested),
		OrganicMillis:       organicElapsed.Milliseconds(),
		PostsPerSecond:      float64(ingested) / organicElapsed.Seconds(),
		QueryWorkers:        *queryWorkers,
		Queries:             atomic.LoadInt64(&queries),
		QueriesPerSec:       float64(atomic.LoadInt64(&queries)) / organicElapsed.Seconds(),
		FinalQueryView:      svc.QueryStats().Epoch,
		GCCycles:            m1.NumGC - m0.NumGC,
		AllocatedTasks:      allocated,
		AllocateMillis:      allocElapsed.Milliseconds(),
		FinalMeanQuality:    m.MeanQuality,
		FinalOverTagged:     m.OverTagged,
		FinalUnderTaggedPct: m.UnderTaggedPct,
		FinalWastedPosts:    m.WastedPosts,
		WALDir:              *walDir,
	}
	if ingested > 0 {
		out.AllocBytesPerPost = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ingested)
		out.AllocsPerPost = float64(m1.Mallocs-m0.Mallocs) / float64(ingested)
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(enc))
}
