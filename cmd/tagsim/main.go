// Command tagsim regenerates the paper's tables and figures on the
// synthetic replay corpus.
//
// Usage:
//
//	tagsim [-scale quick|paper|tiny] [-exp id[,id...]] [-seed N] [-list]
//
// With no -exp, every registered experiment runs in presentation order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"incentivetag/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: quick, paper, or tiny")
	expIDs := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 0, "override dataset seed (0 = scale default)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc experiments.Scale
	switch *scaleName {
	case "quick":
		sc = experiments.Quick()
	case "paper":
		sc = experiments.Paper()
	case "tiny":
		sc = experiments.Tiny()
	default:
		fmt.Fprintf(os.Stderr, "tagsim: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	start := time.Now()
	fmt.Printf("# tagsim scale=%s n=%d budget=%d seed=%d\n", sc.Name, sc.N, sc.Budget, sc.Seed)
	ctx, err := experiments.NewContext(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagsim: generating corpus: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# corpus generated in %v (%d resources)\n\n", time.Since(start).Round(time.Millisecond), ctx.Data.N())

	if *expIDs == "" {
		if err := experiments.RunAll(ctx, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tagsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, id := range strings.Split(*expIDs, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tagsim: %v\n", err)
				os.Exit(2)
			}
			if err := e.Run(ctx, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "tagsim: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("# total %v\n", time.Since(start).Round(time.Millisecond))
}
