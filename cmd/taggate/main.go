// Command taggate fronts a sharded tagserved cluster: it loads a static
// shard-map JSON file, routes every ingested post to its owner node via
// consistent hashing on resource id, scatter-gathers /topk, /search and
// /metrics across all nodes (merging partial top-k lists bit-identically
// to a single-node engine — see internal/ir/cluster.go), and runs the
// lease loop (/allocate, /complete, /expire) against per-shard
// allocators with the owning node encoded in each lease id.
//
// Usage:
//
//	taggate -map cluster.json [-addr :8378] [-probe-interval 1s]
//	        [-rate 0] [-burst 0] [-max-inflight 0] [-queue 0]
//	        [-queue-wait 0] [-max-body 8388608]
//
// The shard map is the single placement authority:
//
//	{"vnodes": 64, "nodes": [
//	  {"name": "node0", "url": "http://127.0.0.1:8381"},
//	  {"name": "node1", "url": "http://127.0.0.1:8382"}]}
//
// Every node must be started with -cluster-map on the same file and
// -cluster-self set to its name; the map's hash is exchanged on every
// cluster RPC, so divergent maps fail with 409 instead of silently
// mis-ranking.
//
// A down shard degrades reads instead of failing them: /topk and
// /search still answer 200 with the live nodes' merged results and
// "partial": true. The exceptions are writes whose owner is down
// (503 + Retry-After) and /topk for a subject whose owner is down (the
// subject's live vector is unreachable, 503). GET /healthz reports
// ready only with every node up, degraded while any is down; GET
// /owner?resource=i reports where the ring places a resource.
//
// The admission flags reuse tagserved's middleware at the gateway:
// proxied ingest is the bulk class (shed first, 429 + Retry-After pass-
// through from the nodes included), queries and the lease loop are
// interactive. GET /metrics/prom adds per-backend liveness, request,
// error and latency series to the same admission telemetry.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incentivetag/internal/admit"
	"incentivetag/internal/cluster"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "taggate: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8378", "HTTP listen address")
	mapPath := flag.String("map", "", "shard-map JSON file (required)")
	probeInterval := flag.Duration("probe-interval", cluster.DefaultProbeInterval, "per-backend /healthz probe cadence")
	rate := flag.Float64("rate", 0, "bulk ingest admission rate in requests/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "bulk token-bucket burst (0 = one second's worth)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently served requests (0 = unlimited)")
	queue := flag.Int("queue", 0, "interactive wait-queue capacity (0 = default, negative = none)")
	queueWait := flag.Duration("queue-wait", 0, "max queued interactive wait (0 = default)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default 8 MiB)")
	flag.Parse()

	if *mapPath == "" {
		fail("-map is required")
	}
	m, err := cluster.LoadMap(*mapPath)
	if err != nil {
		fail("%v", err)
	}
	g, err := cluster.New(cluster.Config{
		Map: m,
		Admission: admit.Config{
			Rate:        *rate,
			Burst:       *burst,
			MaxInFlight: *maxInflight,
			Queue:       *queue,
			QueueWait:   *queueWait,
		},
		MaxBodyBytes:  *maxBody,
		ProbeInterval: *probeInterval,
	})
	if err != nil {
		fail("%v", err)
	}
	g.Start()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "taggate: fronting %d nodes (vnodes=%d, map hash %s) on %s\n",
		len(m.Nodes), m.VNodes, g.MapHash(), l.Addr())

	hs := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "taggate: %v — draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		err := hs.Shutdown(ctx)
		cancel()
		if err != nil {
			fail("shutdown: %v", err)
		}
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fail("serve: %v", err)
		}
	}
	g.Stop()
	fmt.Fprintf(os.Stderr, "taggate: stopped\n")
}
