// Command benchgate is the CI benchmark regression gate: it compares
// the throughput *ratios* of a fresh BENCH_engine.json against a
// committed baseline and fails when any ratio fell below
// tolerance × baseline.
//
// Usage:
//
//	benchgate -baseline .github/bench-baseline.json -report BENCH_engine.ci.json
//
// Only dimensionless ratios are gated (checkpoint speedup, batched
// ingest speedups, WAL group-commit speedup, serving-vs-fig6
// throughput): absolute posts/sec vary wildly across CI runner
// hardware, but a ratio of two measurements taken in the same process
// on the same machine transfers. The tolerance is deliberately generous
// — the gate exists to catch "someone made the hot path 3× slower", not
// 10% noise.
//
// Baseline schema:
//
//	{
//	  "tolerance": 0.45,
//	  "ratios": { "speedup": 1.87, "ingest.scan_speedup": 1.19, ... }
//	}
//
// Ratio keys are dot-paths into the report JSON. Refresh the baseline by
// running `go run ./cmd/tagbench -n 300 -budget 1500` on any machine and
// copying the new ratios in whenever a PR legitimately shifts them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Baseline is the committed gate definition.
type Baseline struct {
	// Tolerance multiplies each baseline ratio to get the failure
	// threshold; (0,1]. 0.45 means "fail below 45% of baseline".
	Tolerance float64 `json:"tolerance"`
	// Ratios maps report dot-paths to their baseline values.
	Ratios map[string]float64 `json:"ratios"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}

// lookup resolves a dot-path ("ingest.scan_speedup") in decoded JSON.
func lookup(doc map[string]any, path string) (float64, bool) {
	cur := any(doc)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		if cur, ok = m[part]; !ok {
			return 0, false
		}
	}
	v, ok := cur.(float64)
	return v, ok
}

func main() {
	baselinePath := flag.String("baseline", ".github/bench-baseline.json", "committed baseline file")
	reportPath := flag.String("report", "BENCH_engine.ci.json", "fresh tagbench report to check")
	tolerance := flag.Float64("tolerance", 0, "override the baseline's tolerance (0 = use file)")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fail("%v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fail("baseline: %v", err)
	}
	if *tolerance != 0 {
		base.Tolerance = *tolerance
	}
	if base.Tolerance <= 0 || base.Tolerance > 1 {
		fail("tolerance %g outside (0,1]", base.Tolerance)
	}
	if len(base.Ratios) == 0 {
		fail("baseline gates nothing")
	}

	raw, err = os.ReadFile(*reportPath)
	if err != nil {
		fail("%v", err)
	}
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		fail("report: %v", err)
	}

	keys := make([]string, 0, len(base.Ratios))
	for k := range base.Ratios {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Each failure is recorded as a named-metric diff so a red CI run is
	// diagnosable from the log alone: which metric, what it measured,
	// what the baseline was and where the floor sat.
	var failures []string
	for _, key := range keys {
		want := base.Ratios[key]
		floor := want * base.Tolerance
		got, ok := lookup(report, key)
		status := "ok"
		switch {
		case !ok:
			status = "MISSING"
			failures = append(failures,
				fmt.Sprintf("%s: missing from report (baseline %.3f — was the suite renamed or skipped?)", key, want))
		case got < floor:
			status = "REGRESSED"
			failures = append(failures,
				fmt.Sprintf("%s: current %.3f < floor %.3f (baseline %.3f × tolerance %.2f; %.0f%% of baseline)",
					key, got, floor, want, base.Tolerance, 100*got/want))
		}
		fmt.Printf("benchgate: %-42s baseline %8.3f  floor %8.3f  current %8.3f  %s\n",
			key, want, floor, got, status)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s\n", f)
		}
		fail("%d of %d gated metrics failed", len(failures), len(keys))
	}
	fmt.Printf("benchgate: all %d ratios within tolerance\n", len(keys))
}
