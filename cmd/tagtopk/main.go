// Command tagtopk runs the paper's similarity case study (§V-C.1) from
// the command line: it prints the top-k resources most similar to a
// subject under four tagging states — the initial cut, Free Choice, a
// chosen strategy, and the ideal full-data state.
//
// Usage:
//
//	tagtopk [-n 600] [-seed 42] [-subject www.myphysicslab.example]
//	        [-strategy FP] [-budget 3000] [-k 10] [-data dir]
package main

import (
	"flag"
	"fmt"
	"os"

	"incentivetag"
)

func main() {
	n := flag.Int("n", 600, "resources to generate when -data is not given")
	seed := flag.Int64("seed", 42, "generation seed")
	dataDir := flag.String("data", "", "load a persisted corpus instead of generating")
	subject := flag.String("subject", "www.myphysicslab.example", "subject resource name")
	stratName := flag.String("strategy", "FP", "strategy to compare against FC")
	budget := flag.Int("budget", 3000, "post-task budget")
	k := flag.Int("k", 10, "list length")
	flag.Parse()

	var ds *incentivetag.Dataset
	var err error
	if *dataDir != "" {
		ds, err = incentivetag.LoadDataset(*dataDir)
	} else {
		ds, err = incentivetag.Generate(incentivetag.DefaultConfig(*n, *seed))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagtopk: %v\n", err)
		os.Exit(1)
	}
	subjID, ok := ds.ByName(*subject)
	if !ok {
		fmt.Fprintf(os.Stderr, "tagtopk: unknown resource %q\n", *subject)
		os.Exit(2)
	}

	s := incentivetag.NewSimulation(ds, incentivetag.Options{Seed: *seed})
	columns := []struct {
		label string
		index *incentivetag.SimilarityIndex
	}{}
	columns = append(columns, struct {
		label string
		index *incentivetag.SimilarityIndex
	}{"initial", s.SnapshotInitial()})
	for _, name := range []string{"FC", *stratName} {
		ix, err := s.SnapshotAfter(name, *budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tagtopk: %s: %v\n", name, err)
			os.Exit(1)
		}
		columns = append(columns, struct {
			label string
			index *incentivetag.SimilarityIndex
		}{fmt.Sprintf("%s(B=%d)", name, *budget), ix})
	}
	columns = append(columns, struct {
		label string
		index *incentivetag.SimilarityIndex
	}{"ideal", s.SnapshotFull()})

	fmt.Printf("top-%d similar to %s (category %s)\n\n", *k, *subject,
		ds.Tax.Name(ds.Resources[subjID].Leaf))
	for _, col := range columns {
		fmt.Printf("-- %s\n", col.label)
		for rank, sc := range col.index.TopK(subjID, *k) {
			r := &ds.Resources[sc.ID]
			fmt.Printf("  %2d. %-34s %-14s %.4f\n", rank+1, r.Name, ds.Tax.Name(r.Leaf), sc.Score)
		}
		fmt.Println()
	}
}
