// Package incentivetag is a from-scratch Go implementation of
// "On Incentive-based Tagging" (Yang, Cheng, Mo, Kao, Cheung — ICDE 2013).
//
// Social tagging systems leave most resources under-tagged while a popular
// few are tagged far past the point where new posts add information. The
// paper proposes paying crowd workers to tag specific resources and asks:
// given a fixed budget B of reward units, which resources should receive
// post tasks so that the overall tagging quality is maximized?
//
// The library provides, through this single package:
//
//   - the tagging-stability machinery: relative tag frequency
//     distributions (rfd's), adjacent cosine similarity, Moving-Average
//     stability scores, practically-stable rfd's and stable points
//     (Tracker, StablePoint);
//   - the tagging-quality metric against a stable reference (Reference,
//     SetQuality);
//   - the incentive allocation strategies FC, RR, FP, MU and FP-MU
//     (NewStrategy) and the theoretically optimal offline DP
//     (SolveOptimal);
//   - a deterministic replay simulator implementing the paper's
//     evaluation protocol (Simulation);
//   - a calibrated synthetic del.icio.us-style corpus generator with a
//     taxonomy ground truth (Generate, DefaultConfig);
//   - persistence via an embedded crash-safe append-only post store
//     (SaveDataset, LoadDataset);
//   - the IR case-study layer: top-k similar resources and Kendall-τ
//     ranking accuracy (NewSimilarityIndex, RankingAccuracy);
//   - every table and figure of the paper's evaluation as runnable
//     experiments (RunExperiment, Experiments);
//   - a live serving facade over the concurrent sharded tagging engine
//     (Service): lock-striped Ingest from any number of goroutines, the
//     Allocate/Complete incentive loop of Algorithm 1 against live
//     state, and O(1) aggregate metric reads (Quality, Snapshot) backed
//     by incrementally maintained quality sums — with an optional
//     crash-safe write-ahead post log (ServiceOptions.WALDir).
//
// # Quick start
//
//	ds, _ := incentivetag.Generate(incentivetag.DefaultConfig(500, 1))
//	sim := incentivetag.NewSimulation(ds, incentivetag.Options{})
//	res, _ := sim.Run("FP", 2000)
//	fmt.Printf("quality %.4f -> %.4f\n", res.InitialQuality, res.FinalQuality)
//
// # Live serving
//
//	svc, _ := incentivetag.NewService(ds, incentivetag.ServiceOptions{})
//	defer svc.Close()
//	_ = svc.Ingest(42, post)            // concurrent-safe live traffic
//	if i, ok := svc.Allocate(100); ok { // CHOOSE the next post task
//		_ = svc.Complete(i, taggerPost) // ingest its result + UPDATE
//	}
//	fmt.Println(svc.Quality())          // O(1), independent of corpus size
//
// See examples/ for complete programs, README.md for the architecture
// map, and DESIGN.md for the system inventory and the paper-to-module
// map.
package incentivetag
