// Package incentivetag is a from-scratch Go implementation of
// "On Incentive-based Tagging" (Yang, Cheng, Mo, Kao, Cheung — ICDE 2013).
//
// Social tagging systems leave most resources under-tagged while a popular
// few are tagged far past the point where new posts add information. The
// paper proposes paying crowd workers to tag specific resources and asks:
// given a fixed budget B of reward units, which resources should receive
// post tasks so that the overall tagging quality is maximized?
//
// The library provides, through this single package:
//
//   - the tagging-stability machinery: relative tag frequency
//     distributions (rfd's), adjacent cosine similarity, Moving-Average
//     stability scores, practically-stable rfd's and stable points
//     (Tracker, StablePoint);
//   - the tagging-quality metric against a stable reference (Reference,
//     SetQuality);
//   - the incentive allocation strategies FC, RR, FP, MU and FP-MU
//     (NewStrategy) and the theoretically optimal offline DP
//     (SolveOptimal);
//   - a deterministic replay simulator implementing the paper's
//     evaluation protocol (Simulation);
//   - a calibrated synthetic del.icio.us-style corpus generator with a
//     taxonomy ground truth (Generate, DefaultConfig);
//   - persistence via an embedded crash-safe append-only post store
//     (SaveDataset, LoadDataset);
//   - the IR case-study layer: top-k similar resources and Kendall-τ
//     ranking accuracy (NewSimilarityIndex, RankingAccuracy);
//   - every table and figure of the paper's evaluation as runnable
//     experiments (RunExperiment, Experiments);
//   - a live serving facade over the concurrent sharded tagging engine
//     (Service): lock-striped Ingest from any number of goroutines, the
//     Allocate/Complete incentive loop of Algorithm 1 against live
//     state, and O(1) aggregate metric reads (Quality, Snapshot) backed
//     by incrementally maintained quality sums — with optional full
//     durability (ServiceOptions.WALDir): a segmented write-ahead post
//     log plus engine snapshots, background compaction, and crash
//     recovery that rebuilds the exact pre-crash engine.
//
// # Hot path & batching
//
// The serving ingest pipeline is allocation-free and batch-friendly:
//
//   - count vectors use a hybrid dense/map representation — tag ids
//     below sparse.DenseTagCap live in a dense array (pure indexing,
//     zero map traffic), the rare large ids (typo tails) spill to a
//     map; the map form remains the reference implementation and both
//     are bit-identical in every derived metric;
//   - each resource's stable reference rfd is pre-extracted once into a
//     shared dense lookup (quality.RefVector), so the incremental
//     quality dot product is array indexing too;
//   - Service.IngestBatch and Service.IngestMany apply whole batches
//     under one shard-lock acquisition per shard, group-committing each
//     shard's WAL records with a single store write while preserving
//     the per-resource record order per-post Ingest would produce —
//     recovery semantics are unchanged, and the resulting state is
//     bit-identical to one-at-a-time ingestion.
//
// cmd/tagbench measures the pipeline (single-thread baseline vs batched
// dense, a shards×workers throughput matrix, allocations per post, WAL
// group-commit gains, snapshot+tail vs full-replay recovery) and
// records it in BENCH_engine.json; README.md documents the report's
// fields.
//
// # Durability
//
// A Service with ServiceOptions.WALDir set never loses an acknowledged
// post. Every ingest is framed, CRC'd and flushed to the OS in a
// size-rotated segment log (internal/tagstore, MANIFEST-catalogued,
// with implicit per-record sequence numbers) before engine state
// mutates — batched ingest amortizes this to one group-commit write
// per shard batch, which is the visibility guarantee: 200 means
// recoverable. A background snapshotter (interval and/or record-count
// policy, ServiceOptions.SnapshotInterval/SnapshotEvery) periodically
// exports the engine's complete state — count supports plus the exact
// float internals of the MA windows and quality accumulators — into a
// versioned, checksummed snapshot file, then drops the log segments
// the snapshot covers and prunes old snapshots, bounding both restart
// time and disk footprint. NewService on a non-empty WALDir recovers:
// newest valid snapshot (damaged ones are skipped), then the log tail,
// yielding an engine bit-identical to the pre-crash one — asserted in
// tests against both a full-replay oracle and continued identical
// traffic. Mismatched corpora or options fail loudly instead of
// silently diverging. SnapshotNow forces a cycle (POST /admin/snapshot
// over HTTP); Close writes a final snapshot; RecoveryStats reports
// what recovery did. The tagserved readiness gate (GET /healthz)
// answers 503 until replay completes, so restart-under-load scripts
// never race recovery.
//
// # Memory tiering
//
// With a residency budget set (ServiceOptions.MaxResidentResources
// and/or MaxResidentBytes), residence in RAM becomes a per-resource
// property. A background policy loop (TierInterval; TierNow forces a
// pass) freezes the least-recently-touched resources into compact
// varint+delta records (internal/codec — the snapshot encoding) and
// mirrors each eviction into the query index, which keeps its cold
// forward vectors compressed while posting lists stay live; any write
// touching a cold resource rehydrates it on the spot with the same
// exact-integer recompute snapshot restore uses. A tiered restart on a
// WALDir boots cold straight off the mmap'd snapshot
// (tagstore.MapLatestSnapshot): every frozen record aliases the
// mapping, so the heap cost per cold resource is a few scalars (~17x
// fewer live-heap bytes per resource than an all-resident boot at
// fig6 scale — gated in CI). Answers are bit-identical with tiering
// on or off — metrics, qualities, allocation decisions and top-k
// rankings are property-tested against a never-evicted twin at the
// engine, index and Service levels, and cold subjects are served off
// frozen vectors without rehydrating. Service.Residency (GET /info,
// /metrics, and tagserved_* gauges on /metrics/prom) reports the
// hot/cold census, eviction/rehydration counters and rehydrate
// latency quantiles.
//
// # Live query path
//
// Service.TopK and Service.Search serve the paper's retrieval
// operations — top-k similar resources (§V-C.1) and query-by-tag-set
// search — from a mutable, shard-partitioned inverted index
// (ir.OnlineIndex) whose posting lists are maintained incrementally
// from the engine's per-post ingest deltas (engine.Subscriber): no
// snapshot clone, no index rebuild, no corpus rescan per query.
// Queries are epoch-versioned consistent reads (every shard read lock
// held for the duration), bit-identical to rebuilding the immutable
// inverted index over SnapshotRFDs at the returned epoch, and safe
// under arbitrary concurrency with ingest. The index is seeded from
// recovered engine state, so a restarted service answers queries
// identically to the one that crashed. Service.QueryStats (GET /info)
// reports the index census; GET /topk and GET /search expose the
// queries over HTTP.
//
// Query execution uses a block-max pruned engine: posting lists are
// kept count-descending in fixed blocks, each carrying an upper bound
// on its entries' score contribution, and a MaxScore-style executor
// defers whole tags and skips whole blocks that cannot lift any
// candidate past the running kth score. Pruning is exact — every
// comparison carries a slack so float rearrangement can only
// under-prune, and survivors are rescored with the original float
// expressions — so answers stay bit-identical to the exhaustive
// executor (kept in-tree as the oracle). Service.TopK additionally
// memoizes hot subjects in an epoch-keyed result cache: entries are
// valid only at the exact index epoch they were computed under, so any
// ingest silently expires them and a cache hit can never serve stale
// state. Executor and cache counters (blocks skipped, tags deferred,
// candidates scored, cache hits/misses/entries) surface through
// QueryStats and GET /info.
//
// # Operating under load
//
// The HTTP front-end (internal/server, cmd/tagserved) carries an
// SLO-aware admission layer (internal/admit, configured through
// AdmissionConfig): a token bucket paces bulk /ingest traffic and a
// concurrency limiter caps simultaneous in-flight work, with a bounded
// FIFO wait reserved for interactive routes (/allocate, /complete,
// /expire, /topk, /search). Past capacity the server sheds bulk first
// — 429 with a Retry-After computed from the bucket's actual refill
// schedule, never a 5xx — so interactive latency stays bounded while
// overload lasts. GET /metrics/prom exposes the admission picture in
// Prometheus text format (per-route/class outcome counters that sum
// exactly to offered load, log-bucketed latency histograms with
// p50/p90/p99 gauges, in-flight and queue-depth gauges) with no client
// library; GET /healthz distinguishes recovering, overloaded, and
// draining from serving; shutdown stops admitting before it waits for
// in-flight work. Limits are per-process — behind a load balancer,
// size the rate per replica. The zero AdmissionConfig disables
// limiting entirely. AdmissionStats exposes the same counters
// programmatically.
//
// # Scaling out
//
// Past one process, internal/cluster + cmd/taggate shard the corpus
// across N tagserved nodes behind a gateway. A static JSON shard map
// places resources by consistent hashing on resource id (vnode-
// smoothed, deterministic — placement is a pure function of the map),
// every node boots the same primed corpus but ingests only what it
// owns (ServiceOptions.Owned), and the gateway proxies ingest to each
// post's owner while scatter-gathering /topk and /search: the
// subject's live count vector is fetched from its owner, broadcast as
// an explicit weighted query, and the per-node partial rankings are
// merged bit-identically to a single-node engine fed the same posts
// (integer count sums are order-independent in float64; the score
// expressions are shared verbatim). Every merged response carries
// per-node epochs and a partial flag: a dead shard degrades reads to
// 200/partial rather than 5xx, and the shard-map hash rides on every
// cluster RPC so divergent maps fail with 409 instead of silently
// mis-ranking. The gateway reuses the admission layer and exposes
// per-backend health and latency at /metrics/prom.
//
// # Quick start
//
//	ds, _ := incentivetag.Generate(incentivetag.DefaultConfig(500, 1))
//	sim := incentivetag.NewSimulation(ds, incentivetag.Options{})
//	res, _ := sim.Run("FP", 2000)
//	fmt.Printf("quality %.4f -> %.4f\n", res.InitialQuality, res.FinalQuality)
//
// # Live serving
//
//	svc, _ := incentivetag.NewService(ds, incentivetag.ServiceOptions{})
//	defer svc.Close()
//	_ = svc.Ingest(42, post)                // concurrent-safe live traffic
//	if i, lease, ok := svc.Lease(100); ok { // CHOOSE, handed out as a lease
//		_ = i                               // worker tags resource i ...
//		_ = svc.Fulfill(lease, taggerPost)  // ... ingest + UPDATE
//	}                                       // (or svc.Expire(lease))
//	fmt.Println(svc.Quality())              // O(1), independent of corpus size
//
// Any number of workers may hold leases simultaneously — internal/alloc
// guarantees concurrently leased resources are distinct and serializes
// strategy state. internal/server + cmd/tagserved expose the same loop
// as an HTTP/JSON API with graceful shutdown and WAL-backed durability.
//
// See examples/ for complete programs, README.md for the architecture
// map, and DESIGN.md for the system inventory and the paper-to-module
// map.
package incentivetag
