package incentivetag

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"incentivetag/internal/tagstore"
)

// liveEvents builds a deterministic single-writer post stream over the
// corpus's recorded future posts.
func liveEvents(ds *Dataset, n int) []PostEvent {
	rng := rand.New(rand.NewSource(42))
	cursor := make([]int, ds.N())
	for i := range cursor {
		cursor[i] = ds.Resources[i].Initial
	}
	out := make([]PostEvent, 0, n)
	for len(out) < n {
		i := rng.Intn(ds.N())
		r := &ds.Resources[i]
		k := cursor[i]
		p := r.Seq[len(r.Seq)-1]
		if k < len(r.Seq) {
			p = r.Seq[k]
		}
		cursor[i]++
		out = append(out, PostEvent{Resource: i, Post: p})
	}
	return out
}

// assertServicesBitIdentical compares every observable metric of two
// services, bit for bit.
func assertServicesBitIdentical(t *testing.T, want, got *Service) {
	t.Helper()
	mw, mg := want.Snapshot(), got.Snapshot()
	if mw != mg {
		t.Fatalf("metric snapshots differ:\nwant %+v\ngot  %+v", mw, mg)
	}
	if math.Float64bits(want.Quality()) != math.Float64bits(got.Quality()) {
		t.Fatalf("quality differs: %v != %v", want.Quality(), got.Quality())
	}
	for i := 0; i < want.N(); i++ {
		if want.Count(i) != got.Count(i) {
			t.Fatalf("resource %d count %d != %d", i, want.Count(i), got.Count(i))
		}
	}
}

// copyDir clones a durable state directory — the crash image of a
// process killed after its last acknowledged post (every commit is
// flushed to the OS before acknowledgement).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// durableOpts disables the background snapshotter so tests control
// exactly when snapshots exist.
func durableOpts(dir string) ServiceOptions {
	return ServiceOptions{Strategy: "FP", WALDir: dir, SnapshotInterval: -1}
}

// TestServiceReopenRecovers is the regression test for the pre-durability
// bug: NewService on an existing non-empty WALDir re-primed the corpus
// prefix while the logged live posts sat unreplayed, silently diverging
// from the service that wrote them (and double-logging on further
// ingest). Reopening must now reproduce the closed service exactly —
// through the final snapshot, and through a bare log when no snapshot
// survives.
func TestServiceReopenRecovers(t *testing.T) {
	ds := testDS(t)
	dir := t.TempDir()
	svc, err := NewService(ds, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	events := liveEvents(ds, 400)
	for _, ev := range events {
		if err := svc.Ingest(ev.Resource, ev.Post); err != nil {
			t.Fatal(err)
		}
	}
	want := svc.Snapshot()
	wantQ := svc.Quality()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen 1: recovery through the final snapshot Close wrote.
	re, err := NewService(ds, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := re.RecoveryStats()
	if !rec.Recovered || !rec.SnapshotLoaded || rec.SnapshotSeq != 400 || rec.ReplayedRecords != 0 {
		t.Fatalf("snapshot recovery stats: %+v", rec)
	}
	if rec.RecoveredPosts != 400 {
		t.Fatalf("recovered %d posts, want 400", rec.RecoveredPosts)
	}
	if m := re.Snapshot(); m != want {
		t.Fatalf("reopened metrics differ:\nwant %+v\ngot  %+v", want, m)
	}
	if math.Float64bits(re.Quality()) != math.Float64bits(wantQ) {
		t.Fatalf("reopened quality %v != %v", re.Quality(), wantQ)
	}
	// The reopened service keeps serving: further ingest appends to the
	// same log without double-applying history.
	if err := re.Ingest(events[0].Resource, events[0].Post); err != nil {
		t.Fatal(err)
	}
	if got := re.Snapshot().Posts; got != want.Posts+1 {
		t.Fatalf("posts after reopen+ingest = %d, want %d", got, want.Posts+1)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen 2: delete every snapshot — recovery must fall back to a
	// full log replay and land on the same state.
	snaps, err := tagstore.ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("Close left no snapshot")
	}
	for _, sn := range snaps {
		if err := os.Remove(filepath.Join(dir, sn.Name)); err != nil {
			t.Fatal(err)
		}
	}
	re2, err := NewService(ds, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	rec = re2.RecoveryStats()
	if !rec.Recovered || rec.SnapshotLoaded || rec.ReplayedRecords != 401 {
		t.Fatalf("log-replay recovery stats: %+v", rec)
	}
	if got := re2.Snapshot().Posts; got != want.Posts+1 {
		t.Fatalf("log-replay posts = %d, want %d", got, want.Posts+1)
	}
}

// TestServiceRecoverySnapshotPlusTail kills the service (crash image =
// directory copy; every acknowledged post is flushed) after a manual
// snapshot plus further traffic: recovery must load the snapshot and
// replay exactly the tail, reproducing the live service bit for bit.
func TestServiceRecoverySnapshotPlusTail(t *testing.T) {
	ds := testDS(t)
	dir := t.TempDir()
	svc, err := NewService(ds, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	events := liveEvents(ds, 600)
	for _, ev := range events[:450] {
		if err := svc.Ingest(ev.Resource, ev.Post); err != nil {
			t.Fatal(err)
		}
	}
	res, err := svc.SnapshotNow()
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || res.LastSeq != 450 || res.Bytes == 0 {
		t.Fatalf("snapshot result: %+v", res)
	}
	// Idempotent: no new records, no new snapshot.
	if res2, err := svc.SnapshotNow(); err != nil || !res2.Skipped {
		t.Fatalf("repeat snapshot: %+v err=%v", res2, err)
	}
	for _, ev := range events[450:] {
		if err := svc.Ingest(ev.Resource, ev.Post); err != nil {
			t.Fatal(err)
		}
	}

	crash := copyDir(t, dir)
	re, err := NewService(ds, durableOpts(crash))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec := re.RecoveryStats()
	if !rec.SnapshotLoaded || rec.SnapshotSeq != 450 || rec.ReplayedRecords != 150 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	assertServicesBitIdentical(t, svc, re)
	if stats := svc.RecoveryStats(); stats.SnapshotsTaken != 1 {
		t.Fatalf("live service snapshot counter: %+v", stats)
	}
}

// TestServiceRecoveryCrashPointOracle truncates the crash image's log at
// arbitrary byte offsets and asserts that recovery always lands exactly
// on the committed prefix: metrics bit-identical to an oracle service
// fed only the records that survived the cut.
func TestServiceRecoveryCrashPointOracle(t *testing.T) {
	ds := testDS(t)
	dir := t.TempDir()
	svc, err := NewService(ds, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	events := liveEvents(ds, 250)
	for _, ev := range events {
		if err := svc.Ingest(ev.Resource, ev.Post); err != nil {
			t.Fatal(err)
		}
	}

	seg := filepath.Join(dir, "seg-000001.log")
	size, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		off := int64(rng.Intn(int(size.Size()) + 1))
		crash := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crash, "seg-000001.log"), off); err != nil {
			t.Fatal(err)
		}
		re, err := NewService(ds, durableOpts(crash))
		if err != nil {
			t.Fatal(err)
		}
		n := re.RecoveryStats().ReplayedRecords
		if n > len(events) {
			t.Fatalf("offset %d: replayed %d of %d events", off, n, len(events))
		}
		// Oracle: a fresh, log-less service fed exactly the committed
		// prefix.
		oracle, err := NewService(ds, ServiceOptions{Strategy: "FP"})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events[:n] {
			if err := oracle.Ingest(ev.Resource, ev.Post); err != nil {
				t.Fatal(err)
			}
		}
		assertServicesBitIdentical(t, oracle, re)
		re.Close()
		oracle.Close()
	}
}

// TestServiceRecoveryRejectsForeignState: a durable directory is bound
// to its dataset; reopening it against a different corpus must fail
// loudly, never silently diverge.
func TestServiceRecoveryRejectsForeignState(t *testing.T) {
	ds := testDS(t)
	dir := t.TempDir()
	svc, err := NewService(ds, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range liveEvents(ds, 50) {
		if err := svc.Ingest(ev.Resource, ev.Post); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Snapshot path: a restricted corpus has a different resource count.
	opts := durableOpts(dir)
	opts.Resources = 30
	if _, err := NewService(ds, opts); err == nil {
		t.Fatal("snapshot restored against a smaller corpus")
	}
	// Pure-log path: with snapshots gone, replay must still catch
	// records targeting resources outside the corpus.
	snaps, err := tagstore.ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range snaps {
		if err := os.Remove(filepath.Join(dir, sn.Name)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewService(ds, opts); err == nil {
		t.Fatal("foreign log replayed against a smaller corpus")
	}
	// Mismatched omega changes the engine configuration the snapshot
	// demands.
	svc2, err := NewService(ds, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
	opts = durableOpts(dir)
	opts.Omega = 7
	if _, err := NewService(ds, opts); err == nil {
		t.Fatal("snapshot restored under a different omega")
	}
}
