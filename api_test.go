package incentivetag

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"incentivetag/internal/tagstore"
)

// sharedDS memoizes a small corpus across facade tests.
var sharedDS *Dataset

func testDS(t *testing.T) *Dataset {
	t.Helper()
	if sharedDS == nil {
		ds, err := Generate(DefaultConfig(120, 5))
		if err != nil {
			t.Fatal(err)
		}
		sharedDS = ds
	}
	return sharedDS
}

func TestGenerateAndValidate(t *testing.T) {
	ds := testDS(t)
	if err := Validate(ds); err != nil {
		t.Fatal(err)
	}
	if err := Validate(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	st := ds.Stats()
	if st.NResources != 125 { // 120 + 5 case-study resources
		t.Errorf("N = %d", st.NResources)
	}
}

func TestPostAndVocabFacade(t *testing.T) {
	v := NewVocab()
	p, err := ParsePost(v, "maps", "navigation")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Errorf("post = %v", p)
	}
	p2, err := NewPost(p[0], p[1], p[0])
	if err != nil || len(p2) != 2 {
		t.Errorf("NewPost dedup failed: %v %v", p2, err)
	}
}

func TestTrackerAndStablePointFacade(t *testing.T) {
	ds := testDS(t)
	r := &ds.Resources[0]
	tr := NewTracker(20)
	for _, p := range r.Seq {
		tr.Observe(p)
	}
	if _, ok := tr.MA(); !ok {
		t.Fatal("MA undefined after full sequence")
	}
	res := StablePoint(r.Seq, ds.Cfg.PrepOmega, ds.Cfg.PrepTau)
	if !res.Found || res.K != r.StableK {
		t.Errorf("StablePoint = %d/%v, dataset says %d", res.K, res.Found, r.StableK)
	}
	ref := NewReference(r.StableRFD)
	if q := ref.Of(tr.Counts()); q < 0.9 {
		t.Errorf("full-sequence quality %g, want high", q)
	}
	if got := SetQuality([]float64{0.5, 1.0}); got != 0.75 {
		t.Errorf("SetQuality = %g", got)
	}
}

func TestSimulationRunAndOptimal(t *testing.T) {
	ds := testDS(t)
	s := NewSimulation(ds, Options{Seed: 2})
	if s.MaxBudget() <= 0 {
		t.Fatal("MaxBudget not positive")
	}
	res, err := s.Run("FP", 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spent != 300 || res.FinalQuality <= res.InitialQuality {
		t.Errorf("FP run: spent %d, quality %g -> %g", res.Spent, res.InitialQuality, res.FinalQuality)
	}
	total := 0
	for _, x := range res.Assignment {
		total += x
	}
	if total != 300 {
		t.Errorf("Σx = %d", total)
	}

	// Optimal dominates every strategy.
	_, optQ, err := s.SolveOptimal(300)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range StrategyNames() {
		if name == "DP" {
			continue
		}
		r, err := s.Run(name, 300)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.FinalQuality > optQ+1e-9 {
			t.Errorf("%s beat DP: %.6f > %.6f", name, r.FinalQuality, optQ)
		}
	}

	if _, err := s.Run("nope", 10); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunCheckpointsFacade(t *testing.T) {
	ds := testDS(t)
	s := NewSimulation(ds, Options{Seed: 3})
	res, err := s.RunCheckpoints("RR", 200, []int{0, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 3 {
		t.Fatalf("got %d checkpoints", len(res.Checkpoints))
	}
}

func TestSnapshotsAndSimilarity(t *testing.T) {
	ds := testDS(t)
	s := NewSimulation(ds, Options{Seed: 4})
	initial := s.SnapshotInitial()
	full := s.SnapshotFull()
	after, err := s.SnapshotAfter("FP", 300)
	if err != nil {
		t.Fatal(err)
	}
	if initial.N() != ds.N() || full.N() != ds.N() || after.N() != ds.N() {
		t.Fatal("snapshot sizes wrong")
	}
	subj, ok := ds.ByName("www.myphysicslab.example")
	if !ok {
		t.Fatal("case-study resource missing")
	}
	top := full.TopK(subj, 5)
	if len(top) != 5 {
		t.Fatalf("TopK returned %d", len(top))
	}

	pairs := SamplePairs(ds.N(), 2000, 9)
	truth := GroundTruthSimilarities(ds, pairs)
	tauInitial, err := RankingAccuracy(initial.PairSimilarities(pairs), truth)
	if err != nil {
		t.Fatal(err)
	}
	tauFull, err := RankingAccuracy(full.PairSimilarities(pairs), truth)
	if err != nil {
		t.Fatal(err)
	}
	if !(tauFull > tauInitial) {
		t.Errorf("full-data accuracy %.4f not above initial %.4f", tauFull, tauInitial)
	}
}

// The Service facade: concurrent ingest, incentive allocation, O(1)
// metric reads, and the durable WAL path.
func TestServiceFacade(t *testing.T) {
	ds := testDS(t)
	walDir := t.TempDir()
	svc, err := NewService(ds, ServiceOptions{Strategy: "FP", WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.N() != ds.N() {
		t.Fatalf("service N = %d, want %d", svc.N(), ds.N())
	}
	before := svc.Snapshot()

	// Concurrent organic ingest of recorded future posts.
	const workers = 4
	var wg sync.WaitGroup
	var ingested int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < ds.N(); i += workers {
				r := &ds.Resources[i]
				for k := r.Initial; k < r.Initial+3 && k < len(r.Seq); k++ {
					if err := svc.Ingest(i, r.Seq[k]); err != nil {
						t.Error(err)
						return
					}
					atomic.AddInt64(&ingested, 1)
				}
			}
		}(w)
	}
	wg.Wait()

	m := svc.Snapshot()
	if int64(m.Posts) != ingested {
		t.Fatalf("snapshot posts %d, ingested %d", m.Posts, ingested)
	}
	if m.Posts <= before.Posts {
		t.Fatal("ingest did not advance metrics")
	}
	if q := svc.Quality(); q <= 0 || q > 1 {
		t.Fatalf("quality out of range: %g", q)
	}

	// Incentive loop: every allocation must name a real resource and
	// Complete must feed the strategy without errors.
	for b := 0; b < 25; b++ {
		i, ok := svc.Allocate(25 - b)
		if !ok {
			t.Fatal("allocation exhausted unexpectedly")
		}
		r := &ds.Resources[i]
		k := svc.Count(i)
		p := r.Seq[len(r.Seq)-1]
		if k < len(r.Seq) {
			p = r.Seq[k]
		}
		if err := svc.Complete(i, p); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Snapshot().Posts; int64(got) != ingested+25 {
		t.Fatalf("posts after allocation = %d, want %d", got, ingested+25)
	}

	// The WAL recorded every live post (organic + allocated): reopen
	// the log and count.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := tagstore.Open(walDir, tagstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if wal.Records() != ingested+25 {
		t.Fatalf("wal has %d records, want %d", wal.Records(), ingested+25)
	}

	if _, err := NewService(ds, ServiceOptions{Strategy: "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	// FC models organic traffic, not incentive allocation; the service
	// must refuse it rather than let the allocator starve.
	if _, err := NewService(ds, ServiceOptions{Strategy: "FC"}); err == nil {
		t.Error("FC accepted as a live allocation strategy")
	}
}

func TestStatsFacade(t *testing.T) {
	if r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); err != nil || r < 0.999 {
		t.Errorf("Pearson = %g, %v", r, err)
	}
	if tau, err := KendallTau([]float64{1, 2, 3}, []float64{3, 2, 1}); err != nil || tau > -0.999 {
		t.Errorf("KendallTau = %g, %v", tau, err)
	}
}

func TestPreferenceCrowdFacade(t *testing.T) {
	ds := testDS(t)
	workers := UniformWorkers(ds, 20, 0.5, 1)
	if len(workers) != 20 {
		t.Fatal("pool size wrong")
	}
	s := NewSimulation(ds, Options{Seed: 6})
	res, err := s.RunCustom(NewPreferenceFC(ds, workers), 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spent == 0 {
		t.Error("preference crowd completed no tasks")
	}
	l := NewLedger()
	l.Pay(0, 2)
	if l.Total != 2 {
		t.Error("ledger facade broken")
	}
}

func TestSaveLoadFacade(t *testing.T) {
	ds := testDS(t)
	dir := t.TempDir()
	if err := SaveDataset(ds, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != ds.N() {
		t.Errorf("reload N = %d", got.N())
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(Experiments()) < 17 {
		t.Errorf("only %d experiments registered", len(Experiments()))
	}
	sc := QuickScale()
	if sc.N <= 0 || PaperScale().N != 5000 {
		t.Error("scales wrong")
	}
	var buf bytes.Buffer
	tiny := TinyScale()
	if err := RunExperiment("fig5", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("experiment output missing title")
	}
	if err := RunExperiment("nope", tiny, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestStrategyNamesFacade(t *testing.T) {
	names := StrategyNames()
	want := map[string]bool{"DP": true, "FC": true, "RR": true, "FP": true, "MU": true, "FP-MU": true}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected strategy %q", n)
		}
	}
}

// Batched ingest through the Service facade must agree with per-post
// ingest: same final metrics, same WAL record count, batches safe from
// many goroutines.
func TestServiceBatchIngest(t *testing.T) {
	ds := testDS(t)
	walDir := t.TempDir()
	batched, err := NewService(ds, ServiceOptions{Strategy: "FP", WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	sequential, err := NewService(ds, ServiceOptions{Strategy: "FP"})
	if err != nil {
		t.Fatal(err)
	}
	defer sequential.Close()

	const perResource = 4
	var events []PostEvent
	for i := 0; i < ds.N(); i++ {
		r := &ds.Resources[i]
		for k := r.Initial; k < r.Initial+perResource && k < len(r.Seq); k++ {
			events = append(events, PostEvent{Resource: i, Post: r.Seq[k]})
		}
	}
	for _, ev := range events {
		if err := sequential.Ingest(ev.Resource, ev.Post); err != nil {
			t.Fatal(err)
		}
	}
	// Workers own resource stripes, so per-resource order is preserved.
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []PostEvent
			for _, ev := range events {
				if ev.Resource%workers != w {
					continue
				}
				buf = append(buf, ev)
				if len(buf) == 50 {
					if err := batched.IngestMany(buf); err != nil {
						t.Error(err)
					}
					buf = buf[:0]
				}
			}
			if len(buf) > 0 {
				if err := batched.IngestMany(buf); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()

	mb, ms := batched.Snapshot(), sequential.Snapshot()
	if mb.Posts != ms.Posts || mb.Spent != ms.Spent || mb.OverTagged != ms.OverTagged ||
		mb.UnderTagged != ms.UnderTagged || mb.WastedPosts != ms.WastedPosts {
		t.Fatalf("batched metrics diverge:\n%+v\n%+v", mb, ms)
	}
	if diff := mb.MeanQuality - ms.MeanQuality; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean quality %.17g vs %.17g", mb.MeanQuality, ms.MeanQuality)
	}

	// One IngestBatch on a single resource.
	i := 0
	r := &ds.Resources[i]
	var posts []Post
	for k := batched.Count(i); k < len(r.Seq) && len(posts) < 3; k++ {
		posts = append(posts, r.Seq[k])
	}
	if len(posts) > 0 {
		before := batched.Count(i)
		if err := batched.IngestBatch(i, posts); err != nil {
			t.Fatal(err)
		}
		if batched.Count(i) != before+len(posts) {
			t.Fatal("IngestBatch count wrong")
		}
	}

	// The WAL holds every batched record.
	want := int64(len(events) + len(posts))
	if err := batched.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := tagstore.Open(walDir, tagstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if wal.Records() != want {
		t.Fatalf("wal has %d records, want %d", wal.Records(), want)
	}
}

// The lease facade: concurrent workers hold outstanding tasks, expiry
// re-arms, and settled leases are dead forever.
func TestServiceLeaseFacade(t *testing.T) {
	ds := testDS(t)
	svc, err := NewService(ds, ServiceOptions{Strategy: "FP-MU"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Hold several leases at once: all resources distinct.
	type held struct {
		resource int
		lease    LeaseID
	}
	var leases []held
	seen := map[int]bool{}
	for k := 0; k < 8; k++ {
		i, lease, ok := svc.Lease(1 << 20)
		if !ok {
			t.Fatalf("lease %d refused", k)
		}
		if seen[i] {
			t.Fatalf("resource %d leased twice concurrently", i)
		}
		seen[i] = true
		leases = append(leases, held{i, lease})
	}
	if got := svc.OutstandingLeases(); got != 8 {
		t.Fatalf("outstanding = %d, want 8", got)
	}

	// Expire one, fulfill the rest from the recorded replay.
	if err := svc.Expire(leases[0].lease); err != nil {
		t.Fatal(err)
	}
	if err := svc.Expire(leases[0].lease); err == nil {
		t.Fatal("double expire accepted")
	}
	posts := svc.Snapshot().Posts
	for _, h := range leases[1:] {
		r := &ds.Resources[h.resource]
		p := r.Seq[len(r.Seq)-1]
		if k := svc.Count(h.resource); k < len(r.Seq) {
			p = r.Seq[k]
		}
		if err := svc.Fulfill(h.lease, p); err != nil {
			t.Fatal(err)
		}
		if err := svc.Fulfill(h.lease, p); err == nil {
			t.Fatal("double fulfill accepted")
		}
	}
	if got := svc.Snapshot().Posts; got != posts+7 {
		t.Fatalf("posts = %d, want %d", got, posts+7)
	}
	st := svc.AllocStats()
	if st.Issued != 8 || st.Outstanding != 0 || st.Fulfilled != 7 || st.Expired != 1 {
		t.Fatalf("alloc stats = %+v", st)
	}
}
