package incentivetag

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"incentivetag/internal/admit"
	"incentivetag/internal/alloc"
	"incentivetag/internal/core"
	"incentivetag/internal/crowd"
	"incentivetag/internal/engine"
	"incentivetag/internal/experiments"
	"incentivetag/internal/ir"
	"incentivetag/internal/optimal"
	"incentivetag/internal/quality"
	"incentivetag/internal/sim"
	"incentivetag/internal/sparse"
	"incentivetag/internal/stability"
	"incentivetag/internal/stats"
	"incentivetag/internal/strategy"
	"incentivetag/internal/synth"
	"incentivetag/internal/tags"
	"incentivetag/internal/tagstore"
	"incentivetag/internal/taxonomy"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Tag is an interned tag identifier.
	Tag = tags.Tag
	// Vocab interns tag names.
	Vocab = tags.Vocab
	// Post is a set of tags assigned in one tagging operation.
	Post = tags.Post
	// Seq is a resource's time-ordered post sequence.
	Seq = tags.Seq

	// Counts is a sparse tag-count vector whose normalization is an rfd.
	Counts = sparse.Counts
	// Tracker maintains a resource's rfd and MA stability score online.
	Tracker = stability.Tracker
	// StablePointResult reports a practically-stable rfd search.
	StablePointResult = stability.StablePointResult

	// Reference is a stable rfd used as the quality yardstick.
	Reference = quality.Reference
	// Curve is a replayed quality curve x ↦ q(c+x).
	Curve = quality.Curve

	// Problem is the incentive-based tagging optimization problem P(B,R).
	Problem = core.Problem
	// Assignment is a post-task allocation x.
	Assignment = core.Assignment

	// Strategy is an online incentive allocation policy.
	Strategy = strategy.Strategy
	// Env is the observable tagging-system state a Strategy sees.
	Env = strategy.Env

	// Config controls synthetic corpus generation.
	Config = synth.Config
	// Dataset is a generated (or loaded) corpus.
	Dataset = synth.Dataset
	// Resource is one corpus resource.
	Resource = synth.Resource
	// DriftSpec declares a case-study resource with early-topic drift.
	DriftSpec = synth.DriftSpec
	// DatasetStats is the corpus census of §I / §V-A.
	DatasetStats = synth.DatasetStats

	// Taxonomy is the category tree ground truth.
	Taxonomy = taxonomy.Tree

	// SimilarityIndex answers top-k and pair-similarity queries over rfd
	// snapshots.
	SimilarityIndex = ir.Index
	// Scored is a ranked similarity answer.
	Scored = ir.Scored
	// Pair is an unordered resource pair.
	Pair = ir.Pair

	// Checkpoint is a metric snapshot of a simulation run.
	Checkpoint = sim.Checkpoint

	// Metrics is the live tagging engine's O(1) aggregate snapshot.
	Metrics = engine.Metrics

	// Scale sizes an experiment suite run.
	Scale = experiments.Scale
	// Experiment is one registered paper artifact reproduction.
	Experiment = experiments.Experiment
)

// NewVocab returns an empty tag vocabulary.
func NewVocab() *Vocab { return tags.NewVocab() }

// NewPost builds a post from tag ids, deduplicating and sorting.
func NewPost(ts ...Tag) (Post, error) { return tags.NewPost(ts...) }

// ParsePost interns names into v and builds a post.
func ParsePost(v *Vocab, names ...string) (Post, error) { return tags.ParsePost(v, names...) }

// NewTracker returns an MA-score tracker with window ω ≥ 2 (Definition 7).
func NewTracker(omega int) *Tracker { return stability.NewTracker(omega) }

// StablePoint scans a post sequence for its practically-stable rfd
// φ̂(ω, τ) (Definition 8).
func StablePoint(seq Seq, omega int, tau float64) StablePointResult {
	return stability.StablePoint(seq, omega, tau)
}

// NewReference wraps a stable rfd as a quality yardstick (Definition 9).
func NewReference(stable *Counts) *Reference { return quality.NewReference(stable) }

// SetQuality averages per-resource qualities (Definition 10).
func SetQuality(perResource []float64) float64 { return quality.SetQuality(perResource) }

// DefaultConfig returns the calibrated generator configuration for n
// resources under the given seed.
func DefaultConfig(n int, seed int64) Config { return synth.DefaultConfig(n, seed) }

// Generate builds a deterministic synthetic corpus.
func Generate(cfg Config) (*Dataset, error) { return synth.Generate(cfg) }

// SaveDataset persists a corpus (tagstore post log + metadata) under dir.
func SaveDataset(ds *Dataset, dir string) error { return ds.Save(dir) }

// LoadDataset reads a corpus persisted by SaveDataset.
func LoadDataset(dir string) (*Dataset, error) { return synth.Load(dir) }

// StrategyNames lists the implemented online strategies plus "DP".
func StrategyNames() []string { return append([]string(nil), experiments.StrategyNames...) }

// NewStrategy instantiates an online strategy by its paper name: "FC",
// "RR", "FP", "MU" or "FP-MU" (omega is the MA window for MU/FP-MU).
func NewStrategy(name string, omega int) (Strategy, error) {
	return experiments.NewStrategy(name, omega)
}

// Options tune a Simulation.
type Options struct {
	// Omega is the MA window ω for trackers and MU/FP-MU (default 5, the
	// paper's experimental default).
	Omega int
	// Seed drives stochastic strategies (FC). Default 1.
	Seed int64
	// Resources restricts the simulation to the first n corpus resources
	// (0 = all).
	Resources int
}

// Simulation replays the paper's evaluation protocol over a corpus.
type Simulation struct {
	ds   *Dataset
	data *sim.Data
	opts Options
}

// NewSimulation prepares a replay simulation over ds.
func NewSimulation(ds *Dataset, opts Options) *Simulation {
	if opts.Omega == 0 {
		opts.Omega = 5
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Simulation{ds: ds, data: sim.FromDataset(ds, opts.Resources), opts: opts}
}

// MaxBudget returns the largest spendable budget (total replayable posts).
func (s *Simulation) MaxBudget() int { return s.data.MaxBudget() }

// Result summarizes one strategy run.
type Result struct {
	Strategy       string
	Budget         int
	Spent          int
	InitialQuality float64
	FinalQuality   float64
	Assignment     Assignment
	Checkpoints    []Checkpoint
}

// Run executes one named strategy with the given budget and no
// intermediate checkpoints.
func (s *Simulation) Run(name string, budget int) (*Result, error) {
	return s.RunCheckpoints(name, budget, nil)
}

// RunCheckpoints executes one named strategy, snapshotting metrics at the
// given ascending spent-budget values.
func (s *Simulation) RunCheckpoints(name string, budget int, checkpoints []int) (*Result, error) {
	strat, err := NewStrategy(name, s.opts.Omega)
	if err != nil {
		return nil, err
	}
	st := sim.NewState(s.data, s.opts.Omega, s.opts.Seed)
	initial := st.Quality()
	cps, err := st.Run(strat, budget, checkpoints)
	if err != nil {
		return nil, err
	}
	return &Result{
		Strategy:       name,
		Budget:         budget,
		Spent:          st.Spent(),
		InitialQuality: initial,
		FinalQuality:   st.Quality(),
		Assignment:     st.Assignment(),
		Checkpoints:    cps,
	}, nil
}

// RunCustom executes a caller-supplied Strategy implementation — the
// extension point for new allocation policies.
func (s *Simulation) RunCustom(strat Strategy, budget int) (*Result, error) {
	st := sim.NewState(s.data, s.opts.Omega, s.opts.Seed)
	initial := st.Quality()
	cps, err := st.Run(strat, budget, nil)
	if err != nil {
		return nil, err
	}
	return &Result{
		Strategy:       strat.Name(),
		Budget:         budget,
		Spent:          st.Spent(),
		InitialQuality: initial,
		FinalQuality:   st.Quality(),
		Assignment:     st.Assignment(),
		Checkpoints:    cps,
	}, nil
}

// SolveOptimal runs the offline DP (Section III-D) for the budget and
// returns the optimal assignment with its mean quality. The DP costs
// O(n·B²); keep instances moderate.
func (s *Simulation) SolveOptimal(budget int) (Assignment, float64, error) {
	curves, err := sim.BuildCurves(s.data, budget)
	if err != nil {
		return nil, 0, err
	}
	res, err := optimal.Solve(curves, budget, optimal.Options{Bounded: true})
	if err != nil {
		return nil, 0, err
	}
	x, err := res.AssignmentAt(budget)
	if err != nil {
		return nil, 0, err
	}
	return x, res.MeanQualityAt(budget), nil
}

// SolveGreedy runs the offline marginal-gain oracle: near-optimal on
// tagging workloads (quality curves are mostly concave) at
// O((n+B) log n) instead of the DP's O(n·B²). Returns the assignment and
// its mean quality.
func (s *Simulation) SolveGreedy(budget int) (Assignment, float64, error) {
	curves, err := sim.BuildCurvesParallel(s.data, budget)
	if err != nil {
		return nil, 0, err
	}
	x, total, err := optimal.SolveGreedy(curves, budget, s.data.Costs)
	if err != nil {
		return nil, 0, err
	}
	return x, total / float64(s.data.N()), nil
}

// SetCosts installs a per-resource task cost vector (the paper's
// variable-cost future-work extension). nil restores unit costs.
func (s *Simulation) SetCosts(costs []int) error {
	if costs != nil && len(costs) != s.data.N() {
		return fmt.Errorf("incentivetag: %d costs for %d resources", len(costs), s.data.N())
	}
	s.data.Costs = costs
	return nil
}

// InvertedTopK is a tag-postings-accelerated top-k similarity index,
// exact but touching only resources that share tags with the subject.
type InvertedTopK = ir.InvertedIndex

// NewInvertedTopK builds the accelerated index over an rfd snapshot set
// (e.g. SimilarityIndex.RFDs()).
func NewInvertedTopK(rfds []*Counts) *InvertedTopK { return ir.BuildInverted(rfds) }

// SnapshotAfter runs a strategy and returns the resulting rfd snapshots
// as a similarity index (the case-study workflow of §V-C).
func (s *Simulation) SnapshotAfter(name string, budget int) (*SimilarityIndex, error) {
	strat, err := NewStrategy(name, s.opts.Omega)
	if err != nil {
		return nil, err
	}
	st := sim.NewState(s.data, s.opts.Omega, s.opts.Seed)
	if _, err := st.Run(strat, budget, nil); err != nil {
		return nil, err
	}
	return ir.NewIndex(st.SnapshotRFDs()), nil
}

// SnapshotInitial returns the "Jan 31" similarity index (initial posts
// only); SnapshotFull returns the ideal "Dec 31" index (every recorded
// post).
func (s *Simulation) SnapshotInitial() *SimilarityIndex {
	rfds := make([]*Counts, s.data.N())
	for i := range rfds {
		rfds[i] = sparse.FromSeq(s.data.Seqs[i], s.data.Initial[i])
	}
	return ir.NewIndex(rfds)
}

// SnapshotFull returns the ideal index built from complete sequences.
func (s *Simulation) SnapshotFull() *SimilarityIndex {
	rfds := make([]*Counts, s.data.N())
	for i := range rfds {
		rfds[i] = sparse.FromSeq(s.data.Seqs[i], len(s.data.Seqs[i]))
	}
	return ir.NewIndex(rfds)
}

// NewSimilarityIndex wraps rfd snapshots for top-k and ranking queries.
func NewSimilarityIndex(rfds []*Counts) *SimilarityIndex { return ir.NewIndex(rfds) }

// SamplePairs draws m distinct resource pairs for ranking evaluation.
func SamplePairs(n, m int, seed int64) []Pair { return ir.SamplePairs(n, m, seed) }

// GroundTruthSimilarities evaluates taxonomy ground truth on pairs.
func GroundTruthSimilarities(ds *Dataset, pairs []Pair) []float64 {
	leaves := make([]taxonomy.NodeID, len(ds.Resources))
	for i := range ds.Resources {
		leaves[i] = ds.Resources[i].Leaf
	}
	return ir.GroundTruth(ds.Tax, leaves, pairs)
}

// RankingAccuracy is Kendall's τ between tag-derived and ground-truth
// pair similarities (Figure 7's accuracy measure).
func RankingAccuracy(simVals, truthVals []float64) (float64, error) {
	return ir.RankingAccuracy(simVals, truthVals)
}

// Pearson computes the correlation of Equation 15.
func Pearson(xs, ys []float64) (float64, error) { return stats.Pearson(xs, ys) }

// KendallTau computes Kendall's τ-b rank correlation in O(n log n).
func KendallTau(xs, ys []float64) (float64, error) { return stats.KendallTau(xs, ys) }

// QuickScale and PaperScale size the experiment suite.
func QuickScale() Scale { return experiments.Quick() }

// PaperScale returns the paper's n=5000 / B=10000 configuration.
func PaperScale() Scale { return experiments.Paper() }

// TinyScale returns a minimal configuration for smoke tests.
func TinyScale() Scale { return experiments.Tiny() }

// Experiments lists every registered paper artifact.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment reproduces one paper artifact by id (e.g. "fig6a",
// "table6") at the given scale, writing its table to w.
func RunExperiment(id string, sc Scale, w io.Writer) error {
	e, err := experiments.Lookup(id)
	if err != nil {
		return err
	}
	ctx, err := experiments.NewContext(sc)
	if err != nil {
		return err
	}
	return e.Run(ctx, w)
}

// RunAllExperiments reproduces every registered artifact at the given
// scale against one shared corpus.
func RunAllExperiments(sc Scale, w io.Writer) error {
	ctx, err := experiments.NewContext(sc)
	if err != nil {
		return err
	}
	return experiments.RunAll(ctx, w)
}

// ServiceOptions configure a live tagging Service.
type ServiceOptions struct {
	// Omega is the MA window ω for trackers and MU/FP-MU (default 5).
	Omega int
	// Shards is the engine shard count (default engine.DefaultShards);
	// ingest throughput scales with shards across cores.
	Shards int
	// Strategy names the allocation policy behind Allocate: "RR", "FP",
	// "MU" or "FP-MU" (default "FP-MU"). "FC" is rejected: Free Choice
	// models organic tagger behaviour over the recorded replay stream,
	// which a live service receives through Ingest instead of
	// allocating.
	Strategy string
	// Seed drives stochastic strategies (default 1).
	Seed int64
	// WALDir, when non-empty, opens the durable state directory: a
	// segmented append-only post log plus engine snapshots. Every
	// ingested post is group-committed to the log before it mutates
	// engine state, and NewService RECOVERS from the directory — newest
	// valid snapshot first, then the log tail — so a restarted service
	// resumes bit-identical to the last acknowledged post. The directory
	// is bound to one dataset and one set of engine options; reopening it
	// with a different corpus fails loudly rather than silently
	// diverging.
	WALDir string
	// SnapshotInterval is the background snapshotter's time policy: with
	// a WALDir configured, a snapshot is written (and the covered log
	// segments compacted away) whenever this much time has passed since
	// the last one. 0 means DefaultSnapshotInterval; negative disables
	// the background snapshotter (Close still writes a final snapshot).
	SnapshotInterval time.Duration
	// SnapshotEvery additionally triggers a snapshot once this many log
	// records have accumulated since the last one (0 disables the
	// record-count policy).
	SnapshotEvery int
	// KeepSnapshots is how many snapshot files to retain after a new one
	// lands (default 2: the newest plus one fallback).
	KeepSnapshots int
	// Resources restricts the service to the first n corpus resources
	// (0 = all).
	Resources int
	// Owned, when non-nil, marks this service as one node of a sharded
	// cluster: it admits exactly the resources this node owns under the
	// cluster's placement ring. The incentive allocator is masked to
	// owned resources (a node never hands out a task whose completion
	// would land a live post on a resource another node owns), and the
	// cluster query surface (RFD/TopKWeighted/SearchOwned) scores only
	// owned resources. Ingest is NOT filtered here — the HTTP layer
	// rejects misdirected posts loudly instead (421) so a routing bug
	// can never silently split a resource's live state across nodes.
	Owned func(resource int) bool
	// MaxResidentResources caps how many resources the memory-tiering
	// policy keeps hot (tracker and count vector materialized on the
	// heap); the rest are frozen into compact varint records and
	// rehydrated on touch. 0 means unbounded. Setting either residency
	// budget enables tiering: a background policy loop evicts the
	// least-recently-touched resources back inside the budget, the query
	// index mirrors each eviction by freezing the matching forward
	// vector (posting lists stay live so pruned queries bound and skip
	// cold resources without rehydrating them), and — with a WALDir
	// holding a snapshot — boot switches to an mmap'd cold start where
	// every resource begins cold, aliasing its record inside the mapped
	// snapshot. Every answer on every path stays bit-identical to an
	// untiered service; only memory and latency profiles change.
	MaxResidentResources int
	// MaxResidentBytes caps the estimated heap held by hot resources
	// (count vectors, MA rings, trackers). 0 means unbounded.
	MaxResidentBytes int64
	// TierInterval is the background tiering loop's cadence (default
	// DefaultTierInterval). Negative disables the background loop;
	// TierNow still runs the policy on demand.
	TierInterval time.Duration
}

// DefaultSnapshotInterval is the background snapshotter's default time
// policy.
const DefaultSnapshotInterval = time.Minute

// DefaultTierInterval is the background tiering loop's default cadence.
const DefaultTierInterval = 2 * time.Second

// LeaseID names one outstanding incentivized post-task assignment.
type LeaseID = alloc.LeaseID

// AllocatorStats is a census of the allocator's lease lifecycle.
type AllocatorStats = alloc.Stats

// Service is the live-serving facade over the sharded tagging engine:
// the production-shaped counterpart of Simulation. Posts stream in
// through Ingest from any number of goroutines; the incentive
// allocation loop of Algorithm 1 runs against the live state through
// leases (Lease/Fulfill/Expire) so any number of workers can hold
// outstanding post tasks simultaneously; Quality and Snapshot read the
// incrementally maintained metrics in O(1) regardless of corpus size.
//
// Every method is safe for arbitrary concurrency: ingest scales across
// engine shards, while strategy state is serialized inside the lease
// allocator (internal/alloc). Allocate/Complete remain as the
// resource-keyed sequential surface; under the one-task-at-a-time
// discipline they make exactly the decisions the lease path makes.
type Service struct {
	eng    *engine.Engine
	wal    *tagstore.Store
	alloc  *alloc.Allocator
	walDir string
	keep   int

	// idx is the live query index: an incrementally-maintained inverted
	// index fed by the engine's ingest-delta subscriber hook, seeded from
	// the (possibly recovered) engine state at construction. TopK and
	// Search read it without ever rescanning or cloning the corpus.
	idx *ir.OnlineIndex

	// cache memoizes TopK answers per (subject, k), versioned by the
	// index epoch: any ingest bumps the epoch and expires every entry,
	// so a hit is always bit-identical to re-running the query.
	cache *resultCache

	// owned is the cluster-membership predicate (nil outside a cluster:
	// every resource is local).
	owned func(int) bool

	recovery RecoveryStats // boot-time recovery facts, immutable

	// Snapshot machinery. snapMu serializes snapshot/compaction cycles
	// (the background snapshotter, /admin/snapshot and Close can race);
	// lastSnapSeq is guarded by it.
	snapMu      sync.Mutex
	lastSnapSeq uint64
	snapsTaken  atomic.Int64
	segsDropped atomic.Int64

	stopSnap chan struct{}
	snapWG   sync.WaitGroup

	// Tiering machinery (zero when no residency budget is configured).
	// mapped is the snapshot mapping a cold boot aliased its frozen
	// records out of; it must outlive the engine, so Close releases it
	// last. rehydrateHist collects per-rehydration latencies from the
	// engine's observer hook (lock-free; it runs under shard locks).
	tiered           bool
	maxResident      int
	maxResidentBytes int64
	rehydrateHist    *admit.Histogram
	mapped           *tagstore.MappedSnapshot
	stopTier         chan struct{}
	tierWG           sync.WaitGroup
}

// RecoveryStats reports what NewService did to rebuild state from a
// durable WALDir, plus the live snapshotter counters.
type RecoveryStats struct {
	// Recovered is true when the WALDir held prior state (a snapshot or
	// log records) that was restored.
	Recovered bool `json:"recovered"`
	// SnapshotLoaded is true when a snapshot seeded the engine;
	// SnapshotSeq is the log sequence number it covered.
	SnapshotLoaded bool   `json:"snapshot_loaded"`
	SnapshotSeq    uint64 `json:"snapshot_seq"`
	// SnapshotsSkipped counts damaged snapshot files passed over on the
	// way to the newest valid one.
	SnapshotsSkipped int `json:"snapshots_skipped"`
	// ReplayedRecords is the number of log-tail records replayed on top
	// of the snapshot (the whole log when none was loaded); ReplayBytes
	// the log bytes read to do it.
	ReplayedRecords int   `json:"replayed_records"`
	ReplayBytes     int64 `json:"replay_bytes"`
	// RecoveredPosts is the total number of live (non-primed) posts in
	// the rebuilt engine — snapshot-carried plus replayed.
	RecoveredPosts int `json:"recovered_posts"`
	// ReplayMillis is the wall-clock recovery time (snapshot decode +
	// tail replay).
	ReplayMillis int64 `json:"replay_ms"`
	// SnapshotsTaken / SegmentsCompacted are cumulative since boot.
	SnapshotsTaken    int `json:"snapshots_taken"`
	SegmentsCompacted int `json:"segments_compacted"`
}

// NewService builds a live tagging service over a corpus: each
// resource is primed with its initial post prefix and measured against
// its stable reference rfd, exactly as a deployment bootstrapped from a
// historical tagging log would be.
//
// With a non-empty WALDir the service is durable: if the directory
// already holds state, NewService first RECOVERS — it loads the newest
// valid snapshot (falling back over damaged ones), replays the log tail
// past it, and only then starts serving, yielding an engine that is
// bit-identical to the one that last acknowledged a post there. A
// background snapshotter then keeps recovery cheap: on the configured
// interval/record policy it exports engine state, durably writes a
// snapshot, drops the log segments the snapshot covers and prunes old
// snapshots. Close flushes a final snapshot.
func NewService(ds *Dataset, opts ServiceOptions) (*Service, error) {
	if opts.Omega == 0 {
		opts.Omega = 5
	}
	if opts.Strategy == "" {
		opts.Strategy = "FP-MU"
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.SnapshotInterval == 0 {
		opts.SnapshotInterval = DefaultSnapshotInterval
	}
	if opts.KeepSnapshots == 0 {
		opts.KeepSnapshots = 2
	}
	if opts.Strategy == "FC" {
		return nil, fmt.Errorf("incentivetag: FC models organic tagger choice over the recorded replay; a live Service receives organic traffic through Ingest — pick RR, FP, MU or FP-MU for Allocate")
	}
	data := sim.FromDataset(ds, opts.Resources)
	if err := data.Validate(); err != nil {
		return nil, err
	}
	engCfg := engine.Config{
		Omega:          opts.Omega,
		Shards:         opts.Shards,
		UnderThreshold: data.UnderThreshold,
		TagUniverse:    data.TagUniverse,
	}
	tiered := opts.MaxResidentResources > 0 || opts.MaxResidentBytes > 0
	var hist *admit.Histogram
	if tiered {
		hist = admit.NewHistogram()
		engCfg.RehydrateObserver = func(nanos int64) { hist.Observe(time.Duration(nanos)) }
	}
	var wal *tagstore.Store
	if opts.WALDir != "" {
		var err error
		wal, err = tagstore.Open(opts.WALDir, tagstore.Options{})
		if err != nil {
			return nil, err
		}
		engCfg.WAL = wal
	}
	eng, rec, mapped, err := buildEngine(engCfg, data, wal, opts.WALDir, tiered)
	if err != nil {
		if wal != nil {
			wal.Close()
		}
		return nil, err
	}
	strat, err := NewStrategy(opts.Strategy, opts.Omega)
	if err != nil {
		mapped.Close()
		if wal != nil {
			wal.Close()
		}
		return nil, err
	}
	// In a cluster, the allocator must only ever CHOOSE owned resources:
	// completing a lease ingests the worker's post on THIS node, and the
	// partition invariant — every live post lives on its resource's
	// owner — is what makes scatter-gather queries exact.
	env := strategy.Env(engine.NewView(eng, opts.Seed))
	if opts.Owned != nil {
		env = strategy.Masked(env, opts.Owned)
	}
	s := &Service{
		eng:              eng,
		wal:              wal,
		alloc:            alloc.New(strat, env, eng),
		walDir:           opts.WALDir,
		keep:             opts.KeepSnapshots,
		recovery:         rec,
		lastSnapSeq:      rec.SnapshotSeq,
		owned:            opts.Owned,
		tiered:           tiered,
		maxResident:      opts.MaxResidentResources,
		maxResidentBytes: opts.MaxResidentBytes,
		rehydrateHist:    hist,
		mapped:           mapped,
	}
	// Seed the live query index from the engine state — which, on the
	// durable path, is the recovered state (snapshot + WAL tail already
	// replayed), so a post-crash server answers queries identically to
	// the one that crashed — then attach the delta subscriber before any
	// traffic can flow. This one-time seed is the only corpus scan the
	// query path ever performs. A tiered service seeds frozen: each
	// resource's support streams straight from the engine (live vector or
	// frozen record, residency unchanged) into a compressed forward
	// vector, so a cold mmap boot never materializes the corpus just to
	// answer queries — subjects thaw as traffic touches them.
	if tiered {
		s.idx = ir.NewOnlineIndexFrozen(eng.N(), eng.Shards(), data.TagUniverse, eng.ForEachEntry)
	} else {
		s.idx = ir.NewOnlineIndex(eng.SnapshotRFDs(), eng.Shards())
	}
	eng.Subscribe(s.idx)
	s.cache = newResultCache(0)
	if wal != nil && opts.SnapshotInterval > 0 {
		s.stopSnap = make(chan struct{})
		s.snapWG.Add(1)
		go s.snapshotter(opts.SnapshotInterval, opts.SnapshotEvery)
	}
	if tiered && opts.TierInterval >= 0 {
		interval := opts.TierInterval
		if interval == 0 {
			interval = DefaultTierInterval
		}
		s.stopTier = make(chan struct{})
		s.tierWG.Add(1)
		go s.tierLoop(interval)
	}
	return s, nil
}

// buildEngine constructs the serving engine, recovering durable state
// when the WAL directory already holds any. Every divergence between
// the directory and the corpus/options is a loud error: recovery either
// reproduces the pre-crash engine exactly or refuses to serve.
//
// A tiered service boots COLD from the newest snapshot: the snapshot
// file is mmap'd, each resource's frozen record aliases its byte span
// inside the mapping, and only scalars are computed during one
// streaming validation pass (engine.NewFromMapped) — seq cross-checks
// and corpus binding are the same as the decoded path. The returned
// mapping (nil otherwise) must stay open as long as the engine lives;
// Service.Close releases it.
func buildEngine(cfg engine.Config, data *sim.Data, wal *tagstore.Store, walDir string, tiered bool) (*engine.Engine, RecoveryStats, *tagstore.MappedSnapshot, error) {
	var rec RecoveryStats
	if wal == nil {
		eng, err := engine.New(cfg, data.EngineSpecs())
		return eng, rec, nil, err
	}
	start := time.Now()
	var eng *engine.Engine
	var mapped *tagstore.MappedSnapshot
	var snapSeq uint64
	if tiered {
		m, ok, skipped, err := tagstore.MapLatestSnapshot(walDir)
		if err != nil {
			return nil, rec, nil, err
		}
		rec.SnapshotsSkipped = skipped
		if ok {
			var stateSeq uint64
			eng, stateSeq, err = engine.NewFromMapped(cfg, data.EngineSpecs(), m.Payload)
			if err == nil && stateSeq != m.LastSeq {
				err = fmt.Errorf("snapshot file covers seq %d but its state says %d", m.LastSeq, stateSeq)
			}
			if err == nil && stateSeq > wal.LastSeq() {
				err = fmt.Errorf("snapshot covers seq %d but the log ends at %d — log truncated behind the snapshot", stateSeq, wal.LastSeq())
			}
			if err == nil && wal.FirstSeq() > stateSeq+1 {
				err = fmt.Errorf("log starts at seq %d, leaving a gap after snapshot seq %d", wal.FirstSeq(), stateSeq)
			}
			if err != nil {
				m.Close()
				return nil, rec, nil, fmt.Errorf("incentivetag: recovering %s: %w", walDir, err)
			}
			mapped = m
			snapSeq = m.LastSeq
			rec.SnapshotLoaded = true
			rec.SnapshotSeq = snapSeq
		}
	} else {
		seq, payload, ok, skipped, err := tagstore.LatestSnapshot(walDir)
		if err != nil {
			return nil, rec, nil, err
		}
		rec.SnapshotsSkipped = skipped
		if ok {
			st, err := engine.UnmarshalState(payload)
			if err != nil {
				return nil, rec, nil, fmt.Errorf("incentivetag: recovering %s: %w", walDir, err)
			}
			if st.LastSeq != seq {
				return nil, rec, nil, fmt.Errorf("incentivetag: recovering %s: snapshot file covers seq %d but its state says %d", walDir, seq, st.LastSeq)
			}
			if st.LastSeq > wal.LastSeq() {
				return nil, rec, nil, fmt.Errorf("incentivetag: recovering %s: snapshot covers seq %d but the log ends at %d — log truncated behind the snapshot", walDir, st.LastSeq, wal.LastSeq())
			}
			if wal.FirstSeq() > st.LastSeq+1 {
				return nil, rec, nil, fmt.Errorf("incentivetag: recovering %s: log starts at seq %d, leaving a gap after snapshot seq %d", walDir, wal.FirstSeq(), st.LastSeq)
			}
			eng, err = engine.NewFromState(cfg, data.EngineSpecs(), st)
			if err != nil {
				return nil, rec, nil, fmt.Errorf("incentivetag: recovering %s: %w", walDir, err)
			}
			rec.SnapshotLoaded = true
			rec.SnapshotSeq = seq
			snapSeq = seq
		}
	}
	if eng == nil {
		if wal.LastSeq() > 0 && wal.FirstSeq() > 1 {
			return nil, rec, nil, fmt.Errorf("incentivetag: recovering %s: log starts at seq %d with no usable snapshot — compacted records are unrecoverable", walDir, wal.FirstSeq())
		}
		var err error
		eng, err = engine.New(cfg, data.EngineSpecs())
		if err != nil {
			return nil, rec, nil, err
		}
	}
	n := eng.N()
	bytes, err := wal.ScanFrom(snapSeq+1, func(seq uint64, rid uint32, p Post) error {
		if int64(rid) >= int64(n) {
			return fmt.Errorf("incentivetag: recovering %s: log record seq %d targets resource %d outside the corpus (n=%d) — the directory belongs to a different dataset", walDir, seq, rid, n)
		}
		rec.ReplayedRecords++
		return eng.Replay(int(rid), p)
	})
	if err != nil {
		mapped.Close()
		return nil, rec, nil, err
	}
	rec.ReplayBytes = bytes
	rec.RecoveredPosts = eng.Snapshot().Posts
	rec.ReplayMillis = time.Since(start).Milliseconds()
	rec.Recovered = rec.SnapshotLoaded || rec.ReplayedRecords > 0
	return eng, rec, mapped, nil
}

// N returns the number of resources served.
func (s *Service) N() int { return s.eng.N() }

// Ingest records one live post for a resource, updating its rfd, MA
// score and every aggregate metric in O(|post|). Safe for concurrent
// use; posts for resources on different shards proceed in parallel.
func (s *Service) Ingest(resource int, p Post) error {
	return s.eng.Ingest(resource, p)
}

// PostEvent is one element of a cross-resource ingest batch.
type PostEvent = engine.PostEvent

// IngestBatch records a batch of posts for one resource under a single
// shard-lock acquisition and one group-committed WAL write. The
// resulting state is bit-identical to ingesting the posts one at a time;
// throughput is substantially higher (see BENCH_engine.json).
func (s *Service) IngestBatch(resource int, posts []Post) error {
	return s.eng.IngestBatch(resource, posts)
}

// IngestMany records a batch of posts spanning arbitrary resources,
// taking each involved shard's lock once and group-committing each
// shard's WAL records with one write. Per resource, events apply in
// slice order. Safe for concurrent use alongside Ingest and the
// allocation loop.
func (s *Service) IngestMany(events []PostEvent) error {
	return s.eng.IngestMany(events)
}

// Lease asks the configured strategy which resource the next
// incentivized post task should target, given the remaining reward
// budget, and hands out a lease on it (Algorithm 1's CHOOSE, decoupled
// from its completion). ok is false when nothing is allocatable. The
// resource is hidden from further Leases until this one settles via
// Fulfill or Expire, so any number of workers can hold tasks
// concurrently without ever being handed the same resource twice.
func (s *Service) Lease(remaining int) (resource int, lease LeaseID, ok bool) {
	return s.alloc.Lease(remaining)
}

// Fulfill settles a lease with the post its worker produced: the post
// is ingested (WAL-first when durability is configured) and the
// strategy runs Algorithm 1's UPDATE. Fulfilling an unknown, already
// fulfilled, or expired lease returns an error without touching any
// state. The strategy is notified even when the ingest itself fails
// (e.g. a WAL write error), so a failed completion re-arms the resource
// instead of permanently removing it.
func (s *Service) Fulfill(lease LeaseID, p Post) error {
	return s.alloc.Fulfill(lease, p)
}

// Expire settles a lease without a post — the worker abandoned the
// task. The resource is re-armed for future allocation; no post is
// ingested and no budget is consumed.
func (s *Service) Expire(lease LeaseID) error {
	return s.alloc.Expire(lease)
}

// OutstandingLeases returns the number of unsettled leases.
func (s *Service) OutstandingLeases() int { return s.alloc.Outstanding() }

// LeaseResource returns the resource an outstanding lease targets; ok
// is false for unknown or settled leases.
func (s *Service) LeaseResource(lease LeaseID) (resource int, ok bool) {
	return s.alloc.Resource(lease)
}

// AllocStats reports the lease lifecycle counters (issued, outstanding,
// fulfilled, expired).
func (s *Service) AllocStats() AllocatorStats { return s.alloc.StatsSnapshot() }

// Allocate is the sequential resource-keyed surface over Lease: it
// leases the next task and returns only the resource. Every successful
// Allocate must be followed by exactly one Complete for that resource.
// Prefer Lease/Fulfill for concurrent workers — they carry the lease
// identity explicitly.
func (s *Service) Allocate(remaining int) (resource int, ok bool) {
	resource, _, ok = s.alloc.Lease(remaining)
	return resource, ok
}

// Complete ingests the post produced by an allocated task and notifies
// the strategy (Algorithm 1's UPDATE step), settling the oldest
// outstanding lease on the resource. Calling Complete on a resource
// with no outstanding lease preserves the historical unpaired-Complete
// behaviour: the post is ingested and the strategy notified directly.
func (s *Service) Complete(resource int, p Post) error {
	return s.alloc.FulfillResource(resource, p)
}

// Count returns the number of posts a resource has received.
func (s *Service) Count(resource int) int { return s.eng.Count(resource) }

// CostOf returns the reward units one post task on the resource
// consumes (1 unless the variable-cost extension is active).
func (s *Service) CostOf(resource int) int { return s.eng.CostOf(resource) }

// Quality returns the current mean tagging quality q(R, ·) — an O(1)
// read of the engine's incremental aggregates.
func (s *Service) Quality() float64 { return s.eng.Snapshot().MeanQuality }

// Snapshot returns the full aggregate metric snapshot in O(shards).
func (s *Service) Snapshot() Metrics { return s.eng.Snapshot() }

// SnapshotRFDs clones every resource's current rfd counts for the
// similarity case-study layer (NewSimilarityIndex).
func (s *Service) SnapshotRFDs() []*Counts { return s.eng.SnapshotRFDs() }

// QueryStats is a census of the live query index (epoch, posting-list
// shape, queries served).
type QueryStats = ir.OnlineStats

// AdmissionConfig configures the HTTP front-end's overload control:
// Rate/Burst token-bucket the crowd's bulk ingest (shed with 429 +
// Retry-After when the bucket runs dry), MaxInFlight bounds total
// serving concurrency, and Queue/QueueWait give interactive requests a
// small bounded wait for a slot before they too are shed. The zero
// value admits everything. Limits are per process — a fleet behind a
// load balancer multiplies them by the replica count.
type AdmissionConfig = admit.Config

// AdmissionStats is the admission controller's census: per-class
// outcome counters (admitted/shed/timed-out) plus the live in-flight
// and queue-depth gauges, as also exported via GET /metrics/prom.
type AdmissionStats = admit.Stats

// TopK answers the top-k similar-resource query (§V-C.1) from the live
// online index: no snapshot clone, no index rebuild — the posting lists
// are maintained incrementally by the ingest paths (Ingest/IngestBatch/
// IngestMany and lease fulfillment alike). The result is an
// epoch-versioned consistent view: bit-identical to rebuilding the
// inverted index from SnapshotRFDs at the returned epoch. Safe for
// arbitrary concurrent use alongside ingest.
//
// Hot subjects are served from an epoch-keyed result cache: a hit
// requires the cached entry's epoch to equal the index's current epoch,
// so any intervening post expires it and a cached answer is always
// bit-identical to re-running the query. Hit/miss counters surface in
// QueryStats and GET /info.
func (s *Service) TopK(subject, k int) ([]Scored, uint64, error) {
	if n := s.eng.N(); subject < 0 || subject >= n {
		return nil, 0, fmt.Errorf("incentivetag: resource index %d out of range [0,%d)", subject, n)
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("incentivetag: k must be positive, got %d", k)
	}
	cur := s.idx.Epoch()
	if res, ok := s.cache.get(subject, k, cur); ok {
		return res, cur, nil
	}
	res, epoch := s.idx.TopK(subject, k)
	s.cache.put(subject, k, epoch, res)
	return res, epoch, nil
}

// Search ranks resources by cosine similarity between the query tag set
// and every live rfd — the paper's query-by-tag-set retrieval. Only
// resources sharing at least one query tag score above zero, so the
// result holds at most min(k, matches) entries, best first. Like TopK
// it reads the online index under an epoch-versioned consistent view.
func (s *Service) Search(query Post, k int) ([]Scored, uint64, error) {
	if len(query) == 0 {
		return nil, 0, fmt.Errorf("incentivetag: empty search query")
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("incentivetag: k must be positive, got %d", k)
	}
	res, epoch := s.idx.Search(query, k)
	return res, epoch, nil
}

// WeightedTag is one (tag, count) component of an integer-weighted
// query vector — the wire form of a resource's rfd in cluster
// scatter-gather queries.
type WeightedTag = ir.WeightedTag

// OwnsResource reports whether this service owns the resource under its
// cluster placement (always true outside a cluster).
func (s *Service) OwnsResource(resource int) bool {
	return s.owned == nil || s.owned(resource)
}

// RFD exports a resource's live count vector (ascending tag order), its
// exact squared norm and the epoch of the consistent view it was read
// under. A cluster gateway calls this on the subject's owner node and
// ships the result to every node as a TopKWeighted query. Integer
// counts and norms transfer exactly through JSON float64s, which is
// what keeps the distributed scores bit-identical.
func (s *Service) RFD(resource int) ([]WeightedTag, float64, uint64, error) {
	if n := s.eng.N(); resource < 0 || resource >= n {
		return nil, 0, 0, fmt.Errorf("incentivetag: resource index %d out of range [0,%d)", resource, n)
	}
	entries, norm2, _, epoch := s.idx.RFDEntries(resource)
	return entries, norm2, epoch, nil
}

// TopKWeighted ranks this node's OWNED resources against an explicit
// integer-weighted query vector (a subject's counts fetched from its
// owner node via RFD), excluding resource `exclude` (negative = none).
// Per-node answers merged under the (score desc, id asc) comparator are
// bit-identical to a single-node TopK over the union state — see
// internal/ir/cluster.go for the exactness argument.
func (s *Service) TopKWeighted(query []WeightedTag, qNorm2 float64, exclude, k int) ([]Scored, uint64, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("incentivetag: k must be positive, got %d", k)
	}
	if qNorm2 < 0 {
		return nil, 0, fmt.Errorf("incentivetag: negative query norm %g", qNorm2)
	}
	res, epoch := s.idx.TopKWeighted(query, qNorm2, exclude, k, s.owned)
	return res, epoch, nil
}

// SearchOwned is Search restricted to this node's owned resources — the
// node-side half of a scatter-gather /search.
func (s *Service) SearchOwned(query Post, k int) ([]Scored, uint64, error) {
	if len(query) == 0 {
		return nil, 0, fmt.Errorf("incentivetag: empty search query")
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("incentivetag: k must be positive, got %d", k)
	}
	res, epoch := s.idx.SearchOwned(query, k, s.owned)
	return res, epoch, nil
}

// QueryStats reports the live query index census plus the Service
// result-cache counters.
func (s *Service) QueryStats() QueryStats {
	st := s.idx.Stats()
	st.CacheHits, st.CacheMisses, st.CacheEntries = s.cache.stats()
	return st
}

// RecoveryStats reports the boot-time recovery facts plus the live
// snapshotter counters.
func (s *Service) RecoveryStats() RecoveryStats {
	rec := s.recovery
	rec.SnapshotsTaken = int(s.snapsTaken.Load())
	rec.SegmentsCompacted = int(s.segsDropped.Load())
	return rec
}

// SnapshotResult describes one snapshot/compaction cycle.
type SnapshotResult struct {
	// Skipped is true when no log records landed since the last
	// snapshot, so nothing was written.
	Skipped bool `json:"skipped"`
	// LastSeq is the log sequence number the snapshot covers.
	LastSeq uint64 `json:"last_seq"`
	// Bytes is the snapshot payload size.
	Bytes int `json:"bytes"`
	// SegmentsDropped is how many covered log segments compaction
	// reclaimed.
	SegmentsDropped int `json:"segments_dropped"`
	// Millis is the wall-clock cost of the cycle.
	Millis int64 `json:"millis"`
}

// SnapshotNow synchronously runs one snapshot/compaction cycle: export
// a consistent engine state cut, durably write it as a snapshot, drop
// the log segments it covers, and prune old snapshots. Safe to call
// while the service ingests; concurrent cycles are serialized. Returns
// an error when the service has no WALDir.
func (s *Service) SnapshotNow() (SnapshotResult, error) {
	if s.wal == nil {
		return SnapshotResult{}, fmt.Errorf("incentivetag: service has no WAL configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	t0 := time.Now()
	st := s.eng.ExportState()
	if st.LastSeq == s.lastSnapSeq {
		return SnapshotResult{Skipped: true, LastSeq: st.LastSeq}, nil
	}
	payload, err := st.MarshalBinary()
	if err != nil {
		return SnapshotResult{}, err
	}
	if _, err := tagstore.WriteSnapshot(s.walDir, st.LastSeq, payload); err != nil {
		return SnapshotResult{}, err
	}
	res := SnapshotResult{LastSeq: st.LastSeq, Bytes: len(payload)}
	// Prune damaged snapshots plus valid ones beyond the retention
	// count, then compact only through the OLDEST retained VALID
	// snapshot — not the one just written: the segments between retained
	// snapshots are what make the fallback usable if the newest file is
	// ever damaged. (With KeepSnapshots 1 the two sequences coincide.)
	_, compactSeq, ok, err := tagstore.PruneSnapshots(s.walDir, s.keep)
	if err != nil {
		return SnapshotResult{}, err
	}
	if !ok {
		compactSeq = st.LastSeq // unreachable: the snapshot just written is valid
	}
	if err := s.eng.WithWAL(func(w *tagstore.Store) error {
		n, err := w.DropThrough(compactSeq)
		res.SegmentsDropped = n
		return err
	}); err != nil {
		return SnapshotResult{}, err
	}
	s.lastSnapSeq = st.LastSeq
	s.snapsTaken.Add(1)
	s.segsDropped.Add(int64(res.SegmentsDropped))
	res.Millis = time.Since(t0).Milliseconds()
	return res, nil
}

// snapshotter is the background snapshot loop: a snapshot is due when
// the interval has elapsed, or earlier once every records have been
// appended since the last one (records 0 disables the count policy).
func (s *Service) snapshotter(interval time.Duration, records int) {
	defer s.snapWG.Done()
	poll := interval
	if records > 0 && poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	last := time.Now()
	for {
		select {
		case <-s.stopSnap:
			return
		case <-tick.C:
		}
		due := time.Since(last) >= interval
		if !due && records > 0 {
			var pending uint64
			s.eng.WithWAL(func(w *tagstore.Store) error {
				pending = w.LastSeq()
				return nil
			})
			s.snapMu.Lock()
			due = pending >= s.lastSnapSeq+uint64(records)
			s.snapMu.Unlock()
		}
		if !due {
			continue
		}
		// Best effort: a failing snapshot (e.g. disk full) must not kill
		// the serving loop; the interval clock only advances on success,
		// so the next tick retries, and Close still surfaces its own
		// error.
		if _, err := s.SnapshotNow(); err == nil {
			last = time.Now()
		}
	}
}

// TierStats is the combined residency census across the engine tier
// (trackers and count vectors) and the query-index tier (forward
// vectors; posting lists stay live either way), plus the rehydrate
// latency profile. Counters are monotone since boot and partition-clean:
// a cluster's per-node values sum meaningfully.
type TierStats struct {
	// Enabled reports whether a residency budget is configured (TierNow
	// and the background loop only run when it is; the counters below
	// still read zero-cold on an untiered service).
	Enabled bool `json:"enabled"`
	// MaxResident and MaxResidentBytes echo the configured budgets
	// (0 = unbounded).
	MaxResident      int   `json:"max_resident"`
	MaxResidentBytes int64 `json:"max_resident_bytes"`
	// Engine tier: Resident and Cold partition the corpus; Evictions and
	// Rehydrations count hot→cold / cold→hot transitions; ResidentBytes
	// estimates the heap hot resources hold.
	Resident      int    `json:"resident_resources"`
	Cold          int    `json:"cold_resources"`
	Evictions     uint64 `json:"evictions"`
	Rehydrations  uint64 `json:"rehydrations"`
	ResidentBytes int64  `json:"resident_bytes"`
	// Index tier: cold forward vectors and the bytes their frozen blobs
	// hold, with the matching transition counters.
	IndexColdVecs     int64  `json:"index_cold_vecs"`
	IndexFrozenBytes  int64  `json:"index_frozen_bytes"`
	IndexEvictions    uint64 `json:"index_evictions"`
	IndexRehydrations uint64 `json:"index_rehydrations"`
	// Rehydrate latency: sample count and upper-bound p50/p99 in seconds
	// from the engine's per-rehydration observer (zero when untiered or
	// before the first rehydration).
	RehydrateCount uint64  `json:"rehydrate_count"`
	RehydrateP50   float64 `json:"rehydrate_p50_seconds"`
	RehydrateP99   float64 `json:"rehydrate_p99_seconds"`
}

// Residency reports the hot/cold residency census. It scans shard
// residency under each shard lock in turn — sized for metrics scrapes
// and policy inspection, not hot paths.
func (s *Service) Residency() TierStats {
	est := s.eng.Residency()
	qst := s.idx.Stats()
	ts := TierStats{
		Enabled:           s.tiered,
		MaxResident:       s.maxResident,
		MaxResidentBytes:  s.maxResidentBytes,
		Resident:          est.Resident,
		Cold:              est.Cold,
		Evictions:         est.Evictions,
		Rehydrations:      est.Rehydrations,
		ResidentBytes:     est.ResidentBytes,
		IndexColdVecs:     qst.ColdVecs,
		IndexFrozenBytes:  qst.FrozenBytes,
		IndexEvictions:    qst.VecEvictions,
		IndexRehydrations: qst.VecRehydrations,
	}
	if s.rehydrateHist != nil {
		ts.RehydrateCount = s.rehydrateHist.Count()
		ts.RehydrateP50 = s.rehydrateHist.Quantile(0.50)
		ts.RehydrateP99 = s.rehydrateHist.Quantile(0.99)
	}
	return ts
}

// TierNow synchronously runs one tiering policy pass: the engine evicts
// its least-recently-touched hot resources back inside the residency
// budget, and the query index mirrors each eviction by freezing the
// matching forward vector. Returns how many resources froze. Eviction
// never changes observable state — every read and query before and
// after is bit-identical — so running it concurrently with traffic is
// safe; a resource touched mid-pass is simply left hot. Errors when no
// residency budget is configured.
func (s *Service) TierNow() (evicted int, err error) {
	if !s.tiered {
		return 0, fmt.Errorf("incentivetag: service has no residency budget configured")
	}
	ids, err := s.eng.EvictToBudget(s.maxResident, s.maxResidentBytes)
	if len(ids) > 0 {
		s.idx.Evict(ids)
	}
	return len(ids), err
}

// tierLoop is the background tiering policy: every interval, bring the
// engine back inside its residency budget. Failures are left for the
// next tick — eviction is pure housekeeping and must never kill the
// serving loop.
func (s *Service) tierLoop(interval time.Duration) {
	defer s.tierWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopTier:
			return
		case <-tick.C:
			s.TierNow()
		}
	}
}

// Close stops the background snapshotter and tiering loop, writes a
// final snapshot (when a WAL is configured and new records landed),
// flushes and releases the log, and finally unmaps the boot snapshot a
// tiered cold start aliased — cold resources read their frozen records
// out of that mapping, so it must outlive every engine read, and the
// Service must not be used after Close.
func (s *Service) Close() error {
	if s.stopSnap != nil {
		close(s.stopSnap)
		s.snapWG.Wait()
		s.stopSnap = nil
	}
	if s.stopTier != nil {
		close(s.stopTier)
		s.tierWG.Wait()
		s.stopTier = nil
	}
	var err error
	if s.wal != nil {
		_, snapErr := s.SnapshotNow()
		err = s.wal.Close()
		s.wal = nil
		if err == nil {
			err = snapErr
		}
	}
	if s.mapped != nil {
		if cerr := s.mapped.Close(); err == nil {
			err = cerr
		}
		s.mapped = nil
	}
	return err
}

// Worker is one simulated crowd participant (Figure 2's "Internet
// crowds"), optionally restricted to top-level interest categories — the
// paper's user-preference future-work extension.
type Worker = crowd.Worker

// UniformWorkers builds a deterministic worker pool over the dataset's
// taxonomy; pInterest is the fraction of category-specialist workers.
func UniformWorkers(ds *Dataset, n int, pInterest float64, seed int64) []Worker {
	return crowd.UniformWorkers(n, ds.Tax, pInterest, seed)
}

// NewPreferenceFC returns a Free Choice strategy whose tagger model is a
// preference-constrained worker pool instead of pure popularity: workers
// only accept resources in their interest categories.
func NewPreferenceFC(ds *Dataset, workers []Worker) Strategy {
	leaves := make([]taxonomy.NodeID, len(ds.Resources))
	for i := range ds.Resources {
		leaves[i] = ds.Resources[i].Leaf
	}
	return strategy.NewFC(&crowd.PreferencePicker{Workers: workers, Leaves: leaves, Tax: ds.Tax})
}

// Ledger tracks reward payouts per worker (step 4 of Figure 2).
type Ledger = crowd.Ledger

// NewLedger returns an empty reward ledger.
func NewLedger() *Ledger { return crowd.NewLedger() }

// Validate sanity-checks a dataset for simulation use.
func Validate(ds *Dataset) error {
	if ds == nil || ds.N() == 0 {
		return fmt.Errorf("incentivetag: empty dataset")
	}
	return sim.FromDataset(ds, 0).Validate()
}
