package incentivetag

import (
	"sync"
	"sync/atomic"
)

// resultCache memoizes Service.TopK answers for hot subjects, keyed by
// (subject, k) and versioned by the online index epoch. An entry is
// served only while the index is still at the epoch the answer was
// computed under; the first post after that bumps the epoch (via the
// engine.Subscriber delta feed that maintains the index) and every
// cached answer silently expires. Staleness is therefore impossible by
// construction — the cache never needs explicit invalidation hooks, and
// a hit is bit-identical to re-running the query at the same epoch,
// which the pruned executor already guarantees equals the exhaustive
// rebuild.
//
// The cache is a fixed-capacity map with random-victim eviction: the
// workload it targets (hot subjects queried repeatedly between ingest
// bursts) has no adversarial access pattern, and random eviction keeps
// put O(1) without an LRU list and its lock traffic. Results are
// defensively copied on both put and get so callers can retain or
// mutate returned slices freely.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]cacheVal

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheKey struct {
	subject int
	k       int
}

type cacheVal struct {
	epoch uint64
	res   []Scored
}

// defaultCacheCap bounds the cache at a few hundred KB for typical k:
// 4096 entries × k Scored (16 bytes each) ≈ 0.7 MB at k=10.
const defaultCacheCap = 4096

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	return &resultCache{cap: capacity, entries: make(map[cacheKey]cacheVal)}
}

// get returns the cached answer for (subject, k) if one exists at
// exactly the given epoch. Entries from older epochs are deleted on
// contact rather than waiting for eviction, so a burst of ingest
// followed by a hot query phase doesn't strand dead entries at
// capacity.
func (c *resultCache) get(subject, k int, epoch uint64) ([]Scored, bool) {
	key := cacheKey{subject: subject, k: k}
	c.mu.Lock()
	v, ok := c.entries[key]
	if ok && v.epoch != epoch {
		delete(c.entries, key)
		ok = false
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	out := make([]Scored, len(v.res))
	copy(out, v.res)
	return out, true
}

// put stores an answer computed at the given epoch, evicting an
// arbitrary entry when the cache is full. Entries carrying an epoch
// older than one already cached for the same key are still stored —
// the epoch check in get makes any stale entry unservable, so the race
// between two concurrent fills is harmless either way.
func (c *resultCache) put(subject, k int, epoch uint64, res []Scored) {
	stored := make([]Scored, len(res))
	copy(stored, res)
	key := cacheKey{subject: subject, k: k}
	c.mu.Lock()
	if _, exists := c.entries[key]; !exists && len(c.entries) >= c.cap {
		for victim := range c.entries {
			delete(c.entries, victim)
			break
		}
	}
	c.entries[key] = cacheVal{epoch: epoch, res: stored}
	c.mu.Unlock()
}

// stats reports cumulative hits/misses and the current entry count.
func (c *resultCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	entries = len(c.entries)
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), entries
}
