package incentivetag

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// nextPost returns resource i's next recorded live post, falling back
// to its last one when the recorded sequence is exhausted; cursor
// starts at the primed prefix like liveEvents.
func nextPost(ds *Dataset, cursor []int, i int) Post {
	r := &ds.Resources[i]
	k := cursor[i]
	cursor[i]++
	if k < len(r.Seq) {
		return r.Seq[k]
	}
	return r.Seq[len(r.Seq)-1]
}

func startCursor(ds *Dataset) []int {
	cursor := make([]int, ds.N())
	for i := range cursor {
		cursor[i] = ds.Resources[i].Initial
	}
	return cursor
}

// The Service-level residency property: a tiered service under a tiny
// resident budget, with evictions interleaved into an arbitrary mix of
// ingest, batch ingest, allocation and queries, stays bit-identical to
// an untiered twin on every observable surface — including the
// allocation decisions themselves, which read MA and quality aggregates
// that must survive freeze/rehydrate cycles exactly.
func TestServiceTieredBitIdentical(t *testing.T) {
	ds := testDS(t)
	plain, err := NewService(ds, ServiceOptions{Strategy: "FP-MU"})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	tiered, err := NewService(ds, ServiceOptions{
		Strategy:             "FP-MU",
		MaxResidentResources: 10,
		TierInterval:         -1, // policy runs only via TierNow, keeping the interleaving deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()

	rng := rand.New(rand.NewSource(77))
	cursor := startCursor(ds)
	for step := 0; step < 600; step++ {
		ctx := fmt.Sprintf("step %d", step)
		switch rng.Intn(10) {
		case 0, 1, 2:
			i := rng.Intn(ds.N())
			p := nextPost(ds, cursor, i)
			if err := plain.Ingest(i, p); err != nil {
				t.Fatal(err)
			}
			if err := tiered.Ingest(i, p); err != nil {
				t.Fatal(err)
			}
		case 3:
			i := rng.Intn(ds.N())
			posts := []Post{nextPost(ds, cursor, i), nextPost(ds, cursor, i)}
			if err := plain.IngestBatch(i, posts); err != nil {
				t.Fatal(err)
			}
			if err := tiered.IngestBatch(i, posts); err != nil {
				t.Fatal(err)
			}
		case 4:
			evs := make([]PostEvent, 3)
			for j := range evs {
				i := rng.Intn(ds.N())
				evs[j] = PostEvent{Resource: i, Post: nextPost(ds, cursor, i)}
			}
			if err := plain.IngestMany(evs); err != nil {
				t.Fatal(err)
			}
			if err := tiered.IngestMany(evs); err != nil {
				t.Fatal(err)
			}
		case 5:
			// The allocator reads MA/quality across the whole corpus: the
			// tiered service must CHOOSE the same resource.
			rp, lp, okp := plain.Lease(50)
			rt, lt, okt := tiered.Lease(50)
			if okp != okt || (okp && rp != rt) {
				t.Fatalf("%s: lease diverged: (%d,%v) vs (%d,%v)", ctx, rp, okp, rt, okt)
			}
			if !okp {
				break
			}
			if rng.Intn(4) == 0 {
				if err := plain.Expire(lp); err != nil {
					t.Fatal(err)
				}
				if err := tiered.Expire(lt); err != nil {
					t.Fatal(err)
				}
				break
			}
			p := nextPost(ds, cursor, rp)
			if err := plain.Fulfill(lp, p); err != nil {
				t.Fatal(err)
			}
			if err := tiered.Fulfill(lt, p); err != nil {
				t.Fatal(err)
			}
		case 6:
			if _, err := tiered.TierNow(); err != nil {
				t.Fatal(err)
			}
		case 7, 8:
			subject := rng.Intn(ds.N())
			k := 1 + rng.Intn(12)
			got, _, err := tiered.TopK(subject, k)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := plain.TopK(subject, k)
			if err != nil {
				t.Fatal(err)
			}
			assertScoredEqual(t, ctx+" topk", got, want)
		case 9:
			q := ds.Resources[rng.Intn(ds.N())].Seq[0]
			got, _, err := tiered.Search(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := plain.Search(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			assertScoredEqual(t, ctx+" search", got, want)
		}
		if math.Float64bits(tiered.Quality()) != math.Float64bits(plain.Quality()) {
			t.Fatalf("%s: quality diverged: %v vs %v", ctx, tiered.Quality(), plain.Quality())
		}
	}
	// Final sweep over every subject, then the full metric comparison.
	for i := 0; i < ds.N(); i++ {
		got, _, err := tiered.TopK(i, 10)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := plain.TopK(i, 10)
		if err != nil {
			t.Fatal(err)
		}
		assertScoredEqual(t, fmt.Sprintf("final topk %d", i), got, want)
	}
	assertServicesBitIdentical(t, plain, tiered)

	st := tiered.Residency()
	if !st.Enabled || st.MaxResident != 10 {
		t.Fatalf("residency config not surfaced: %+v", st)
	}
	if st.Evictions == 0 || st.Rehydrations == 0 || st.IndexEvictions == 0 {
		t.Fatalf("run exercised no tier transitions: %+v", st)
	}
	if st.RehydrateCount != st.Rehydrations {
		t.Fatalf("rehydrate histogram saw %d samples for %d rehydrations", st.RehydrateCount, st.Rehydrations)
	}
	if st.RehydrateP99 < st.RehydrateP50 || st.RehydrateP99 <= 0 {
		t.Fatalf("rehydrate quantiles malformed: p50=%v p99=%v", st.RehydrateP50, st.RehydrateP99)
	}
	if ust := plain.Residency(); ust.Enabled || ust.Cold != 0 || ust.Evictions != 0 {
		t.Fatalf("untiered service reports tier activity: %+v", ust)
	}
}

// A tiered service must boot COLD from an mmap'd snapshot — zero
// resident resources, zero resident query vectors — and still answer
// every query and metric read bit-identically to an untiered service
// recovered from the same directory.
func TestServiceTieredColdBootFromSnapshot(t *testing.T) {
	ds := testDS(t)
	dir := t.TempDir()
	seed, err := NewService(ds, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range liveEvents(ds, 500) {
		if err := seed.Ingest(ev.Resource, ev.Post); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil { // writes the final snapshot
		t.Fatal(err)
	}

	// Reference: plain recovery from a crash image of the directory.
	ref, err := NewService(ds, durableOpts(copyDir(t, dir)))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	opts := durableOpts(dir)
	opts.MaxResidentResources = 8
	opts.TierInterval = -1
	cold, err := NewService(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := cold.RecoveryStats()
	if !rec.SnapshotLoaded || rec.ReplayedRecords != 0 || rec.RecoveredPosts != 500 {
		t.Fatalf("cold-boot recovery stats: %+v", rec)
	}
	st := cold.Residency()
	if st.Resident != 0 || st.Cold != ds.N() || st.IndexColdVecs != int64(ds.N()) {
		t.Fatalf("cold boot is not cold: %+v", st)
	}
	// Scalar surfaces answer without waking anything.
	if math.Float64bits(cold.Quality()) != math.Float64bits(ref.Quality()) {
		t.Fatalf("quality %v != %v", cold.Quality(), ref.Quality())
	}
	if cold.Snapshot() != ref.Snapshot() {
		t.Fatalf("metrics differ:\nwant %+v\ngot  %+v", ref.Snapshot(), cold.Snapshot())
	}
	if got := cold.Residency(); got.Resident != 0 {
		t.Fatalf("scalar reads forced residency: %+v", got)
	}
	// Queries are exact straight off the frozen state, and only touched
	// subjects warm up.
	for i := 0; i < ds.N(); i++ {
		got, _, err := cold.TopK(i, 10)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.TopK(i, 10)
		if err != nil {
			t.Fatal(err)
		}
		assertScoredEqual(t, fmt.Sprintf("cold-boot topk %d", i), got, want)
	}
	q := ds.Resources[3].Seq[0]
	got, _, err := cold.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	assertScoredEqual(t, "cold-boot search", got, want)

	// Live traffic lands on the mapped engine (rehydrate-on-touch), the
	// policy re-freezes, and the service shuts down through a final
	// snapshot taken over a mixed hot/cold corpus.
	cursor := startCursor(ds)
	for i := 0; i < 60; i++ {
		r := i % ds.N()
		p := nextPost(ds, cursor, r)
		if err := cold.Ingest(r, p); err != nil {
			t.Fatal(err)
		}
		if err := ref.Ingest(r, p); err != nil {
			t.Fatal(err)
		}
	}
	if st := cold.Residency(); st.Rehydrations == 0 {
		t.Fatalf("ingest rehydrated nothing: %+v", st)
	}
	if _, err := cold.TierNow(); err != nil {
		t.Fatal(err)
	}
	if st := cold.Residency(); st.Resident > 8 {
		t.Fatalf("TierNow left %d resident, budget 8", st.Resident)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	// The snapshot Close wrote from the tiered engine reopens into the
	// same state: freeze → export is bit-identical to export-while-hot.
	re, err := NewService(ds, durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if math.Float64bits(re.Quality()) != math.Float64bits(ref.Quality()) {
		t.Fatalf("reopened quality %v != %v", re.Quality(), ref.Quality())
	}
	assertServicesBitIdentical(t, ref, re)
}

// The background tiering loop enforces the budget without any explicit
// TierNow calls, concurrently with ingest and queries (exercised under
// -race in CI).
func TestServiceTierLoopBackground(t *testing.T) {
	ds := testDS(t)
	svc, err := NewService(ds, ServiceOptions{
		Strategy:             "FP",
		MaxResidentResources: 6,
		TierInterval:         2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cursor := startCursor(ds)
		for i := 0; i < 400; i++ {
			r := i % ds.N()
			if err := svc.Ingest(r, nextPost(ds, cursor, r)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, _, err := svc.TopK(i%ds.N(), 5); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Residency()
		if st.Evictions > 0 && st.Resident <= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tier loop never enforced the budget: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}
