module incentivetag

go 1.24
