module incentivetag

go 1.23
