// Crowdmarket runs the full Figure-2 loop: an incentive allocation
// strategy posts tasks, simulated crowd workers (with interest
// preferences) complete them, and a reward ledger pays out. It contrasts
// plain popularity-driven free choice with a preference-constrained
// worker pool — the paper's "user preference" future-work extension.
package main

import (
	"fmt"
	"log"

	"incentivetag"
)

func main() {
	ds, err := incentivetag.Generate(incentivetag.DefaultConfig(300, 11))
	if err != nil {
		log.Fatal(err)
	}

	const budget = 600

	// Baseline: popularity-driven free choice (the FC strategy).
	sim := incentivetag.NewSimulation(ds, incentivetag.Options{Seed: 11})
	fc, err := sim.Run("FC", budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FC (popularity-driven crowd):      quality %.4f -> %.4f\n",
		fc.InitialQuality, fc.FinalQuality)

	// Preference-constrained crowd: 40 workers, 70% of them category
	// specialists who refuse out-of-interest resources.
	workers := incentivetag.UniformWorkers(ds, 40, 0.7, 11)
	specialists := 0
	for _, w := range workers {
		if len(w.Interests) > 0 {
			specialists++
		}
	}
	fmt.Printf("worker pool: %d workers, %d specialists\n", len(workers), specialists)

	sim2 := incentivetag.NewSimulation(ds, incentivetag.Options{Seed: 11})
	prefFC := incentivetag.NewPreferenceFC(ds, workers)
	pref, err := sim2.RunCustom(prefFC, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FC (preference-constrained crowd): quality %.4f -> %.4f\n",
		pref.InitialQuality, pref.FinalQuality)

	// Directed allocation (FP) with the same budget, paying one reward
	// unit per completed task into the ledger (step 4 of Figure 2).
	sim3 := incentivetag.NewSimulation(ds, incentivetag.Options{Seed: 11})
	fp, err := sim3.Run("FP", budget)
	if err != nil {
		log.Fatal(err)
	}
	ledger := incentivetag.NewLedger()
	for task := 0; task < fp.Spent; task++ {
		ledger.Pay(task%len(workers), 1) // round-robin recruitment
	}
	fmt.Printf("FP (directed tasks):               quality %.4f -> %.4f\n",
		fp.InitialQuality, fp.FinalQuality)
	fmt.Printf("ledger: %d reward units disbursed across %d workers (worker 0 earned %d)\n",
		ledger.Total, len(workers), ledger.Paid(0))

	// The funded-resource profile shows where FP directed the budget.
	funded, underTaggedFunded := 0, 0
	for i, xi := range fp.Assignment {
		if xi > 0 {
			funded++
			if ds.Resources[i].Initial <= 10 {
				underTaggedFunded++
			}
		}
	}
	fmt.Printf("FP funded %d resources; %d of them were under-tagged at the cut\n",
		funded, underTaggedFunded)
}
