// Casestudy reproduces the Table VI workflow end to end: a physics site
// whose early taggers described only its Java implementation is repaired
// by incentive allocation, flipping its top-10 most-similar list from
// Java resources to physics resources (§V-C.1).
package main

import (
	"fmt"
	"log"

	"incentivetag"
)

func main() {
	ds, err := incentivetag.Generate(incentivetag.DefaultConfig(600, 42))
	if err != nil {
		log.Fatal(err)
	}
	const subjectName = "www.myphysicslab.example"
	subject, ok := ds.ByName(subjectName)
	if !ok {
		log.Fatalf("case-study resource %s missing", subjectName)
	}
	r := &ds.Resources[subject]
	fmt.Printf("subject %s: true category %s, %d initial posts (early posts drawn from Java)\n\n",
		r.Name, ds.Tax.Name(r.Leaf), r.Initial)

	sim := incentivetag.NewSimulation(ds, incentivetag.Options{Seed: 42})
	const budget = 3000

	fpIndex, err := sim.SnapshotAfter("FP", budget)
	if err != nil {
		log.Fatal(err)
	}
	fcIndex, err := sim.SnapshotAfter("FC", budget)
	if err != nil {
		log.Fatal(err)
	}
	snapshots := []struct {
		label string
		index *incentivetag.SimilarityIndex
	}{
		{"Jan 31 (initial)", sim.SnapshotInitial()},
		{fmt.Sprintf("FC, B=%d", budget), fcIndex},
		{fmt.Sprintf("FP, B=%d", budget), fpIndex},
		{"Dec 31 (ideal)", sim.SnapshotFull()},
	}

	for _, snap := range snapshots {
		top := snap.index.TopK(subject, 10)
		inCategory := 0
		fmt.Printf("-- %s\n", snap.label)
		for rank, sc := range top {
			peer := &ds.Resources[sc.ID]
			cat := ds.Tax.Name(peer.Leaf)
			if peer.Leaf == r.Leaf {
				inCategory++
			}
			fmt.Printf("  %2d. %-34s %-14s %.4f\n", rank+1, peer.Name, cat, sc.Score)
		}
		fmt.Printf("  => %d/10 in the subject's true category\n\n", inCategory)
	}
	fmt.Println("expected shape (paper Table VI): initial list off-topic; FP close to ideal; FC in between")
}
