// Weightedtasks demonstrates the paper's §VI future-work extension
// "post tasks with different costs": resources whose posts are expensive
// to source (niche topics need specialist taggers) compete for budget
// against cheap mainstream ones. The strategies' CHOOSE respects
// affordability, and the offline solvers optimize gain per reward unit.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"incentivetag"
)

func main() {
	ds, err := incentivetag.Generate(incentivetag.DefaultConfig(250, 19))
	if err != nil {
		log.Fatal(err)
	}

	// Cost model: most resources cost 1 unit per post task; a third cost
	// 2; a handful of hard-to-source ones cost 5.
	rng := rand.New(rand.NewSource(19))
	costs := make([]int, ds.N())
	counts := map[int]int{}
	for i := range costs {
		switch r := rng.Float64(); {
		case r < 0.10:
			costs[i] = 5
		case r < 0.40:
			costs[i] = 2
		default:
			costs[i] = 1
		}
		counts[costs[i]]++
	}
	fmt.Printf("cost model: %d cheap (1u), %d medium (2u), %d expensive (5u)\n",
		counts[1], counts[2], counts[5])

	const budget = 800
	for _, name := range []string{"FP", "MU", "RR"} {
		sim := incentivetag.NewSimulation(ds, incentivetag.Options{Seed: 19})
		if err := sim.SetCosts(costs); err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(name, budget)
		if err != nil {
			log.Fatal(err)
		}
		tasks := 0
		for _, x := range res.Assignment {
			tasks += x
		}
		fmt.Printf("%-3s: %3d tasks for %d units, quality %.4f -> %.4f\n",
			name, tasks, res.Spent, res.InitialQuality, res.FinalQuality)
	}

	// The greedy oracle allocates per unit of cost: expensive resources
	// must earn their price in quality gain.
	sim := incentivetag.NewSimulation(ds, incentivetag.Options{Seed: 19})
	if err := sim.SetCosts(costs); err != nil {
		log.Fatal(err)
	}
	x, q, err := sim.SolveGreedy(budget)
	if err != nil {
		log.Fatal(err)
	}
	spent := map[int]int{}
	for i, xi := range x {
		spent[costs[i]] += xi * costs[i]
	}
	fmt.Printf("greedy oracle: quality %.4f; budget split — %du on cheap, %du on medium, %du on expensive\n",
		q, spent[1], spent[2], spent[5])
}
