// Storewalkthrough demonstrates the persistence substrate: a corpus is
// written into the embedded append-only tagstore, reloaded, verified, and
// then recovered after a simulated crash that tears the log's tail.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"incentivetag"
)

func main() {
	dir, err := os.MkdirTemp("", "tagstore-walkthrough-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ds, err := incentivetag.Generate(incentivetag.DefaultConfig(120, 3))
	if err != nil {
		log.Fatal(err)
	}
	before := ds.Stats()
	fmt.Printf("generated: %d resources, %d posts\n", before.NResources, before.TotalPosts)

	corpusDir := filepath.Join(dir, "corpus")
	if err := incentivetag.SaveDataset(ds, corpusDir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted under %s\n", corpusDir)

	loaded, err := incentivetag.LoadDataset(corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	after := loaded.Stats()
	fmt.Printf("reloaded: %d resources, %d posts (round-trip %s)\n",
		after.NResources, after.TotalPosts, okString(before.TotalPosts == after.TotalPosts))

	// Simulate a crash mid-append: chop bytes off the tail of the last
	// log segment. The store detects the torn record on reopen and
	// truncates back to the last complete post.
	segs, err := filepath.Glob(filepath.Join(corpusDir, "posts", "seg-*.log"))
	if err != nil || len(segs) == 0 {
		log.Fatalf("no segments found: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated crash: tore 7 bytes off %s\n", filepath.Base(last))

	recovered, err := incentivetag.LoadDataset(corpusDir)
	if err == nil {
		// The torn post belonged to the final resource; its metadata now
		// disagrees with the recovered log, which Load reports — unless
		// the torn bytes were padding-free, in which case the sequence
		// shrank by exactly one post.
		fmt.Printf("recovered cleanly: %d posts\n", recovered.Stats().TotalPosts)
	} else {
		fmt.Printf("recovery surfaced the data loss explicitly: %v\n", err)
	}

	// A simulation runs fine on the intact reload.
	sim := incentivetag.NewSimulation(loaded, incentivetag.Options{Seed: 3})
	res, err := sim.Run("FP", 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation on reloaded corpus: quality %.4f -> %.4f\n",
		res.InitialQuality, res.FinalQuality)
}

func okString(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}
