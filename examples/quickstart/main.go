// Quickstart: generate a small corpus, measure tagging stability and
// quality, run the recommended FP strategy against the FC baseline, and
// print the quality lift — the paper's headline result in ~60 lines.
package main

import (
	"fmt"
	"log"

	"incentivetag"
)

func main() {
	// 1. A calibrated synthetic del.icio.us-style corpus: 300 resources,
	//    deterministic under seed 7.
	ds, err := incentivetag.Generate(incentivetag.DefaultConfig(300, 7))
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("corpus: %d resources, %d posts, %.0f%% under-tagged at the cut\n",
		st.NResources, st.TotalPosts, 100*float64(st.UnderTagged)/float64(st.NResources))

	// 2. Tagging stability on a single resource: replay its sequence and
	//    watch the MA score converge (Definitions 7–8).
	r := &ds.Resources[0]
	tracker := incentivetag.NewTracker(20)
	for _, post := range r.Seq {
		tracker.Observe(post)
	}
	if ma, ok := tracker.MA(); ok {
		fmt.Printf("%s: %d posts, final MA score %.4f, stable point k*=%d\n",
			r.Name, len(r.Seq), ma, r.StableK)
	}

	// 3. Tagging quality against the stable rfd (Definition 9).
	ref := incentivetag.NewReference(r.StableRFD)
	fmt.Printf("%s: quality with initial %d posts: %.4f\n",
		r.Name, r.Initial, ref.Of(tracker.Counts())) // full-sequence counts ≈ 1.0 vs stable

	// 4. Allocate a budget of 800 post tasks with Fewest-Posts-First (the
	//    paper's recommended strategy) and with Free Choice.
	sim := incentivetag.NewSimulation(ds, incentivetag.Options{Seed: 7})
	for _, name := range []string{"FP", "FC"} {
		res, err := sim.Run(name, 800)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s: quality %.4f -> %.4f (spent %d/%d)\n",
			name, res.InitialQuality, res.FinalQuality, res.Spent, res.Budget)
	}

	// 5. How far from optimal? Solve the offline DP on a small instance.
	small := incentivetag.NewSimulation(ds, incentivetag.Options{Seed: 7, Resources: 100})
	x, optQ, err := small.SolveOptimal(300)
	if err != nil {
		log.Fatal(err)
	}
	fpRes, err := small.Run("FP", 300)
	if err != nil {
		log.Fatal(err)
	}
	nz := 0
	for _, xi := range x {
		if xi > 0 {
			nz++
		}
	}
	fmt.Printf("optimal(DP) on 100 resources: quality %.4f across %d funded resources; FP reaches %.4f\n",
		optQ, nz, fpRes.FinalQuality)
}
