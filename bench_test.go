package incentivetag

// One benchmark per paper table/figure (regenerating the artifact at a
// bench-friendly scale), strategy micro-benchmarks backing Table V, and
// the ablation benches DESIGN.md §5 calls out.

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"incentivetag/internal/benchkit"
	"incentivetag/internal/experiments"
	"incentivetag/internal/ir"
	"incentivetag/internal/optimal"
	"incentivetag/internal/sim"
	"incentivetag/internal/sparse"
	"incentivetag/internal/stability"
	"incentivetag/internal/strategy"
	"incentivetag/internal/synth"
	"incentivetag/internal/tags"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

// benchScale is small enough that the full -bench=. suite finishes in a
// few minutes yet exercises every code path the quick/paper scales do.
func benchScale() experiments.Scale {
	sc := experiments.Tiny()
	sc.N = 150
	sc.Budget = 500
	sc.DPMaxN = 160
	sc.DPMaxBudget = 500
	sc.NSeries = []int{50, 100, 150}
	sc.FixedBudgetE = 250
	sc.BudgetSeries = []int{100, 250, 500}
	sc.OmegaBudget = 250
	sc.TauBudgets = []int{0, 250, 500}
	sc.PairSample = 4000
	sc.CaseBudget = 500
	sc.Fig1bResources = 50000
	return sc
}

func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx, benchErr = experiments.NewContext(benchScale())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// runExp benchmarks one registered experiment end to end (excluding
// corpus generation, which is shared and done once).
func runExp(b *testing.B, id string) {
	ctx := benchContext(b)
	exp, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(ctx, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1aTagConvergence(b *testing.B)             { runExp(b, "fig1a") }
func BenchmarkFig1bPostDistribution(b *testing.B)           { runExp(b, "fig1b") }
func BenchmarkFig3MAScore(b *testing.B)                     { runExp(b, "fig3") }
func BenchmarkFig5QualityCurve(b *testing.B)                { runExp(b, "fig5") }
func BenchmarkFig6aQualityVsBudget(b *testing.B)            { runExp(b, "fig6a") }
func BenchmarkFig6bOverTagged(b *testing.B)                 { runExp(b, "fig6b") }
func BenchmarkFig6cWastedPosts(b *testing.B)                { runExp(b, "fig6c") }
func BenchmarkFig6dUnderTagged(b *testing.B)                { runExp(b, "fig6d") }
func BenchmarkFig6eQualityVsN(b *testing.B)                 { runExp(b, "fig6e") }
func BenchmarkFig6fOmega(b *testing.B)                      { runExp(b, "fig6f") }
func BenchmarkFig6gRuntimeVsBudget(b *testing.B)            { runExp(b, "fig6g") }
func BenchmarkFig6hRuntimeVsN(b *testing.B)                 { runExp(b, "fig6h") }
func BenchmarkTable6TopK(b *testing.B)                      { runExp(b, "table6") }
func BenchmarkTable7TopKCensus(b *testing.B)                { runExp(b, "table7") }
func BenchmarkFig7aKendallVsBudget(b *testing.B)            { runExp(b, "fig7a") }
func BenchmarkFig7bQualityAccuracyCorrelation(b *testing.B) { runExp(b, "fig7b") }
func BenchmarkStatsCensus(b *testing.B)                     { runExp(b, "stats") }

// --- Table V: per-strategy allocation micro-benchmarks -----------------
// Each op is one full budget run (B tasks) on the shared corpus; compare
// ns/op across strategies to see the Table V ordering
// (RR < FP < MU ≈ FP-MU).

func benchStrategy(b *testing.B, name string) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewStrategy(name, 5)
		if err != nil {
			b.Fatal(err)
		}
		st := sim.NewState(ctx.Data, 5, int64(i+1))
		if _, err := st.Run(s, 400, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyFC(b *testing.B)   { benchStrategy(b, "FC") }
func BenchmarkStrategyRR(b *testing.B)   { benchStrategy(b, "RR") }
func BenchmarkStrategyFP(b *testing.B)   { benchStrategy(b, "FP") }
func BenchmarkStrategyMU(b *testing.B)   { benchStrategy(b, "MU") }
func BenchmarkStrategyFPMU(b *testing.B) { benchStrategy(b, "FP-MU") }

// BenchmarkStrategyDP is the Table V / Figure 6(g) DP reference point.
func BenchmarkStrategyDP(b *testing.B) {
	ctx := benchContext(b)
	curves, err := ctx.Curves()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimal.Solve(curves, 400, optimal.Options{Bounded: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ----------------------------------------------------------

// benchSeq is a deterministic 300-post sequence for MA ablations.
func benchSeq() tags.Seq {
	rng := rand.New(rand.NewSource(42))
	seq := make(tags.Seq, 300)
	for i := range seq {
		n := 1 + rng.Intn(4)
		ts := make([]tags.Tag, n)
		for j := range ts {
			ts[j] = tags.Tag(rng.Intn(64))
		}
		p, err := tags.NewPost(ts...)
		if err != nil {
			panic(err)
		}
		seq[i] = p
	}
	return seq
}

// Incremental MA maintenance (Appendix C.4 + sparse deltas): one pass
// over the sequence with O(|post|) per step.
func BenchmarkAblationIncrementalMA(b *testing.B) {
	seq := benchSeq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := stability.NewTracker(5)
		for _, p := range seq {
			tr.Observe(p)
		}
		if _, ok := tr.MA(); !ok {
			b.Fatal("MA undefined")
		}
	}
}

// Naive MA recomputation: dense cosine over the window at every k — the
// O(ω|T|) baseline the paper's Appendix C.4 improves on.
func BenchmarkAblationNaiveMA(b *testing.B) {
	seq := benchSeq()
	const dim = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var last float64
		for k := 5; k <= len(seq); k += 25 { // strided: full replay is quadratic
			ma, ok := stability.NaiveMA(seq, k, 5, dim)
			if !ok {
				b.Fatal("MA undefined")
			}
			last = ma
		}
		_ = last
	}
}

// muLinearScan is MU with CHOOSE() as a full linear scan instead of a
// priority queue — the rebuild-per-step ablation baseline.
type muLinearScan struct {
	env strategy.Env
}

func (s *muLinearScan) Name() string          { return "MU-scan" }
func (s *muLinearScan) Init(env strategy.Env) { s.env = env }
func (s *muLinearScan) Update(int)            {}
func (s *muLinearScan) Choose(remaining int) (int, bool) {
	best, bestMA := -1, 2.0
	for i := 0; i < s.env.N(); i++ {
		if !s.env.Available(i) || s.env.Cost(i) > remaining {
			continue
		}
		if ma, ok := s.env.MA(i); ok && ma < bestMA {
			best, bestMA = i, ma
		}
	}
	return best, best >= 0
}

func BenchmarkAblationHeapLazy(b *testing.B) { benchStrategy(b, "MU") }

func BenchmarkAblationHeapRebuild(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := sim.NewState(ctx.Data, 5, int64(i+1))
		if _, err := st.Run(&muLinearScan{}, 400, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// DP inner-loop bound ablation: capping x_l at the replayable posts vs
// the paper's literal 0 ≤ x_l ≤ b loop.
func BenchmarkAblationDPBounded(b *testing.B)   { benchDP(b, true) }
func BenchmarkAblationDPUnbounded(b *testing.B) { benchDP(b, false) }

func benchDP(b *testing.B, bounded bool) {
	ctx := benchContext(b)
	curves, err := ctx.Curves()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimal.Solve(curves, 300, optimal.Options{Bounded: bounded}); err != nil {
			b.Fatal(err)
		}
	}
}

// Sparse vs dense rfd cosine (the |T| factor of Table V).
func BenchmarkAblationSparseCosine(b *testing.B) {
	x, y := benchCounts(1), benchCounts(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Cosine(y)
	}
}

func BenchmarkAblationDenseCosine(b *testing.B) {
	const dim = 4096
	x, y := benchCounts(1).Dense(dim), benchCounts(2).Dense(dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sparse.DenseCosine(x, y)
	}
}

func benchCounts(seed int64) *sparse.Counts {
	rng := rand.New(rand.NewSource(seed))
	c := sparse.NewCounts()
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(4)
		ts := make([]tags.Tag, n)
		for j := range ts {
			ts[j] = tags.Tag(rng.Intn(4096))
		}
		p, err := tags.NewPost(ts...)
		if err != nil {
			panic(err)
		}
		c.Add(p)
	}
	return c
}

// Greedy concave-envelope oracle vs the exact DP (same curves).
func BenchmarkAblationGreedyOracle(b *testing.B) {
	ctx := benchContext(b)
	curves, err := ctx.Curves()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := optimal.SolveGreedy(curves, 400, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Inverted-index top-k vs exhaustive scoring on the same snapshots.
func BenchmarkAblationTopKExhaustive(b *testing.B) {
	ctx := benchContext(b)
	st := sim.NewState(ctx.Data, 5, 1)
	ix := ir.NewIndex(st.SnapshotRFDs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.TopK(i%ix.N(), 10)
	}
}

func BenchmarkAblationTopKInverted(b *testing.B) {
	ctx := benchContext(b)
	st := sim.NewState(ctx.Data, 5, 1)
	inv := ir.BuildInverted(st.SnapshotRFDs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inv.TopK(i%inv.N(), 10)
	}
}

// Sequential vs parallel quality-curve precomputation (the DP's setup).
func BenchmarkAblationCurvesSequential(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.BuildCurves(ctx.Data, 400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCurvesParallel(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.BuildCurvesParallel(ctx.Data, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// Checkpoint-dense Figure-6 style runs: n=2000 with a metric snapshot
// every 100 spent units of a B=10000 budget. The engine path reads the
// incrementally maintained aggregates in O(1) per checkpoint; the
// full-scan path retains the seed's O(n·|tags|) recomputation. The
// ns/op ratio is the engine extraction's headline speedup (tracked
// across PRs by cmd/tagbench → BENCH_engine.json).
func benchCheckpointDense(b *testing.B, reference bool) {
	sc := benchkit.DefaultScenario()
	data, err := benchkit.Corpus(sc.N, sc.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchkit.Run(data, sc, reference); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointDenseEngine(b *testing.B)   { benchCheckpointDense(b, false) }
func BenchmarkCheckpointDenseFullScan(b *testing.B) { benchCheckpointDense(b, true) }

// Corpus generation throughput (the workload generator itself).
func BenchmarkGenerateCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := synth.DefaultConfig(60, int64(i+1))
		if _, err := synth.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving ingest path: per-post map baseline vs batched dense --------
// Small-scale companions of cmd/tagbench's ingest suite (which runs the
// full n=2000 scenario); one op is a full pass of the corpus's future
// posts through a live engine. See BENCH_engine.json for the tracked
// full-scale numbers.

func benchIngest(b *testing.B, dense bool, batch, workers int) {
	data, err := benchkit.Corpus(400, 1)
	if err != nil {
		b.Fatal(err)
	}
	events := benchkit.FutureEvents(data)
	parts := benchkit.Partition(events, workers)
	eng, err := benchkit.BuildEngine(data, 0, dense, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchkit.RunIngest(eng, parts, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(events)), "ns/post")
}

func BenchmarkIngestBaselinePerPost(b *testing.B)   { benchIngest(b, false, 1, 1) }
func BenchmarkIngestDenseBatch(b *testing.B)        { benchIngest(b, true, 256, 1) }
func BenchmarkIngestDenseBatchWorkers(b *testing.B) { benchIngest(b, true, 256, 4) }
