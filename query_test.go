package incentivetag

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"incentivetag/internal/sparse"
	"incentivetag/internal/tags"
)

// assertScoredEqual demands bit-identical rankings (same ids, same
// float bits, same length).
func assertScoredEqual(t *testing.T, ctx string, got, want []Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: (%d, %v), want (%d, %v)",
				ctx, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// assertQueryOracle checks Service.TopK against a freshly rebuilt
// inverted index over the service's own rfd snapshot — the per-request
// path the serving read side used before the online index existed.
func assertQueryOracle(t *testing.T, svc *Service, subjects []int, k int) {
	t.Helper()
	oracle := NewInvertedTopK(svc.SnapshotRFDs())
	for _, subject := range subjects {
		got, _, err := svc.TopK(subject, k)
		if err != nil {
			t.Fatal(err)
		}
		assertScoredEqual(t, "topk", got, oracle.TopK(subject, k))
	}
}

// The online index behind Service.TopK/Search must stay bit-identical
// to a per-request rebuild after an arbitrary interleaving of organic
// ingest (single, batched, cross-resource), lease fulfillment and lease
// expiry — the full set of paths that mutate rfd state.
func TestServiceQueryEquivalence(t *testing.T) {
	ds := testDS(t)
	svc, err := NewService(ds, ServiceOptions{Strategy: "FP-MU"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rng := rand.New(rand.NewSource(7))
	post := func() Post {
		m := 1 + rng.Intn(3)
		ts := make([]Tag, m)
		for j := range ts {
			ts[j] = Tag(rng.Intn(ds.Vocab.Size()))
		}
		p, err := NewPost(ts...)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	subjects := []int{0, 1, ds.N() / 2, ds.N() - 1}

	for step := 0; step < 120; step++ {
		switch rng.Intn(5) {
		case 0: // single organic post
			if err := svc.Ingest(rng.Intn(ds.N()), post()); err != nil {
				t.Fatal(err)
			}
		case 1: // single-resource batch
			if err := svc.IngestBatch(rng.Intn(ds.N()), []Post{post(), post()}); err != nil {
				t.Fatal(err)
			}
		case 2: // cross-resource batch
			evs := make([]PostEvent, 3+rng.Intn(5))
			for i := range evs {
				evs[i] = PostEvent{Resource: rng.Intn(ds.N()), Post: post()}
			}
			if err := svc.IngestMany(evs); err != nil {
				t.Fatal(err)
			}
		case 3: // lease + fulfill
			if _, lease, ok := svc.Lease(1 << 20); ok {
				if err := svc.Fulfill(lease, post()); err != nil {
					t.Fatal(err)
				}
			}
		case 4: // lease + expire (no rfd change, but exercises the path)
			if _, lease, ok := svc.Lease(1 << 20); ok {
				if err := svc.Expire(lease); err != nil {
					t.Fatal(err)
				}
			}
		}
		if step%30 == 29 {
			assertQueryOracle(t, svc, subjects, 10)
		}
	}
	assertQueryOracle(t, svc, subjects, 25)

	// Search equivalence: the query's unit-count vector cosine against
	// the exhaustive per-resource computation.
	rfds := svc.SnapshotRFDs()
	for trial := 0; trial < 10; trial++ {
		query := post()
		got, _, err := svc.Search(query, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Exhaustive: score every resource with tag overlap.
		type cand struct {
			id    int
			score float64
		}
		var cands []cand
		for i, c := range rfds {
			overlap := false
			for _, tg := range query {
				if c.Get(tg) > 0 {
					overlap = true
					break
				}
			}
			if overlap {
				qc := sparse.NewCounts()
				qc.Add(query)
				cands = append(cands, cand{id: i, score: qc.Cosine(c)})
			}
		}
		for a := 0; a < len(cands); a++ {
			for b := a + 1; b < len(cands); b++ {
				if cands[b].score > cands[a].score ||
					(cands[b].score == cands[a].score && cands[b].id < cands[a].id) {
					cands[a], cands[b] = cands[b], cands[a]
				}
			}
		}
		if len(cands) > 8 {
			cands = cands[:8]
		}
		if len(got) != len(cands) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(cands))
		}
		for i := range cands {
			if got[i].ID != cands[i].id || got[i].Score != cands[i].score {
				t.Fatalf("trial %d rank %d: (%d,%v), want (%d,%v)",
					trial, i, got[i].ID, got[i].Score, cands[i].id, cands[i].score)
			}
		}
	}

	st := svc.QueryStats()
	if st.TopKQueries == 0 || st.SearchQueries == 0 || st.Epoch == 0 || st.Tags == 0 {
		t.Fatalf("QueryStats = %+v", st)
	}

	// Validation errors.
	if _, _, err := svc.TopK(-1, 5); err == nil {
		t.Error("negative subject accepted")
	}
	if _, _, err := svc.TopK(ds.N(), 5); err == nil {
		t.Error("out-of-range subject accepted")
	}
	if _, _, err := svc.TopK(0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := svc.Search(nil, 5); err == nil {
		t.Error("empty query accepted")
	}
}

// A post-crash service must answer queries bit-identically to the one
// that wrote the durable state: the online index is reseeded from the
// recovered engine (snapshot + WAL tail), never from scratch.
func TestServiceQueryRecoveryIdentical(t *testing.T) {
	ds := testDS(t)
	dir := t.TempDir()
	svc, err := NewService(ds, ServiceOptions{WALDir: dir, SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range liveEvents(ds, 400) {
		if err := svc.Ingest(ev.Resource, ev.Post); err != nil {
			t.Fatal(err)
		}
	}
	subjects := []int{0, 3, ds.N() - 1}
	want := map[int][]Scored{}
	for _, s := range subjects {
		res, _, err := svc.TopK(s, 10)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = res
	}
	wantSearch, _, err := svc.Search(tags.MustPost(1, 2, 3), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewService(ds, ServiceOptions{WALDir: dir, SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.RecoveryStats().Recovered {
		t.Fatal("service did not recover durable state")
	}
	for _, s := range subjects {
		got, _, err := re.TopK(s, 10)
		if err != nil {
			t.Fatal(err)
		}
		assertScoredEqual(t, "recovered topk", got, want[s])
	}
	gotSearch, _, err := re.Search(tags.MustPost(1, 2, 3), 10)
	if err != nil {
		t.Fatal(err)
	}
	assertScoredEqual(t, "recovered search", gotSearch, wantSearch)
	// And the recovered index must still track live traffic.
	assertQueryOracle(t, re, subjects, 10)
	if err := re.Ingest(0, tags.MustPost(4)); err != nil {
		t.Fatal(err)
	}
	assertQueryOracle(t, re, subjects, 10)
}

// Concurrent readers during batched ingest: the -race proof that the
// epoch-versioned read view and the subscriber-fed write path are
// sound under arbitrary client concurrency.
func TestServiceConcurrentQueriesDuringIngest(t *testing.T) {
	ds := testDS(t)
	svc, err := NewService(ds, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for !stop.Load() {
				evs := make([]PostEvent, 8)
				for i := range evs {
					p, err := NewPost(Tag(rng.Intn(ds.Vocab.Size())))
					if err != nil {
						t.Error(err)
						return
					}
					evs[i] = PostEvent{Resource: rng.Intn(ds.N()), Post: p}
				}
				if err := svc.IngestMany(evs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	var lastEpoch uint64
	for q := 0; q < 500; q++ {
		res, epoch, err := svc.TopK(q%ds.N(), 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("query %d: %d results", q, len(res))
		}
		if epoch < lastEpoch {
			t.Fatalf("epoch regressed: %d after %d", epoch, lastEpoch)
		}
		lastEpoch = epoch
		if _, _, err := svc.Search(tags.MustPost(Tag(q%ds.Vocab.Size())), 5); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	// Quiesced: back to exact oracle equality.
	assertQueryOracle(t, svc, []int{0, 1, ds.N() - 1}, 10)
}
