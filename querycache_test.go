package incentivetag

import (
	"fmt"
	"testing"

	"incentivetag/internal/tags"
)

// Unit behaviour of the epoch-keyed result cache: hits only at the
// exact epoch, delete-on-contact for stale entries, bounded capacity,
// and defensive copies in both directions.
func TestResultCacheUnit(t *testing.T) {
	c := newResultCache(4)
	res := []Scored{{ID: 1, Score: 0.5}, {ID: 2, Score: 0.25}}

	if _, ok := c.get(7, 2, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(7, 2, 0, res)
	got, ok := c.get(7, 2, 0)
	if !ok {
		t.Fatal("miss after put at same epoch")
	}
	assertScoredEqual(t, "cache hit", got, res)

	// Defensive copies: mutating either the stored input or a returned
	// slice must not leak into later hits.
	res[0].Score = 99
	got[1].ID = -1
	again, ok := c.get(7, 2, 0)
	if !ok || again[0].Score != 0.5 || again[1].ID != 2 {
		t.Fatalf("cached value leaked a caller mutation: %+v", again)
	}

	// Epoch advance: the entry must stop serving and be dropped on
	// contact rather than lingering until eviction.
	if _, ok := c.get(7, 2, 1); ok {
		t.Fatal("stale entry served after epoch advance")
	}
	if _, _, entries := c.stats(); entries != 0 {
		t.Fatalf("stale entry not deleted on contact: %d entries", entries)
	}

	// Capacity: the map never exceeds cap regardless of distinct keys.
	for i := 0; i < 20; i++ {
		c.put(i, 5, 3, res)
	}
	hits, misses, entries := c.stats()
	if entries > 4 {
		t.Fatalf("cache grew past capacity: %d entries", entries)
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("counters not advancing: hits=%d misses=%d", hits, misses)
	}
	// Same (subject, k) at a newer epoch replaces in place, no eviction.
	c.put(3, 5, 4, res)
	if _, _, after := c.stats(); after != entries {
		t.Fatalf("same-key refresh changed entry count: %d -> %d", entries, after)
	}
}

// Service-level cache semantics: repeat queries on a quiet index are
// served from the cache bit-identically, any ingest expires every
// entry, and the counters surface through QueryStats.
func TestServiceResultCache(t *testing.T) {
	ds := testDS(t)
	svc, err := NewService(ds, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	first, epoch1, err := svc.TopK(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	st := svc.QueryStats()
	if st.CacheMisses == 0 || st.CacheEntries == 0 {
		t.Fatalf("first query did not register a cache miss: %+v", st)
	}
	queriesBefore := st.TopKQueries

	second, epoch2, err := svc.TopK(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	assertScoredEqual(t, "cache hit", second, first)
	if epoch2 != epoch1 {
		t.Fatalf("cached answer changed epoch: %d vs %d", epoch2, epoch1)
	}
	st = svc.QueryStats()
	if st.CacheHits == 0 {
		t.Fatalf("repeat query did not hit: %+v", st)
	}
	if st.TopKQueries != queriesBefore {
		t.Fatalf("cache hit still executed the index query: %d -> %d", queriesBefore, st.TopKQueries)
	}

	// Mutating a served result must not poison the cache.
	second[0] = Scored{ID: -1, Score: 42}
	third, _, err := svc.TopK(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	assertScoredEqual(t, "post-mutation hit", third, first)

	// A different k is a distinct entry, not a truncation of the cached
	// k=10 answer.
	k3, _, err := svc.TopK(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertScoredEqual(t, "distinct k", k3, first[:3])

	// Ingest bumps the epoch: every cached entry expires, and the next
	// answer reflects the new state (checked against a cold rebuild).
	if err := svc.Ingest(2, tags.MustPost(1, 2)); err != nil {
		t.Fatal(err)
	}
	hitsBefore := svc.QueryStats().CacheHits
	fresh, epoch3, err := svc.TopK(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if epoch3 == epoch1 {
		t.Fatal("epoch did not advance across ingest")
	}
	if svc.QueryStats().CacheHits != hitsBefore {
		t.Fatal("query after ingest was served from the stale cache")
	}
	oracle := NewInvertedTopK(svc.SnapshotRFDs())
	assertScoredEqual(t, "post-ingest", fresh, oracle.TopK(1, 10))

	// And the refilled entry serves again until the next post.
	refill, epoch4, err := svc.TopK(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	assertScoredEqual(t, "refill hit", refill, fresh)
	if epoch4 != epoch3 {
		t.Fatalf("refill hit changed epoch: %d vs %d", epoch4, epoch3)
	}
}

// Cached serving must hold under concurrency: hammer a handful of hot
// subjects from several goroutines with no ingest and every answer must
// be bit-identical to the first; then interleave ingest and re-verify
// against the oracle.
func TestServiceResultCacheConcurrent(t *testing.T) {
	ds := testDS(t)
	svc, err := NewService(ds, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	want := map[int][]Scored{}
	for s := 0; s < 4; s++ {
		res, _, err := svc.TopK(s, 10)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = res
	}
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for q := 0; q < 200; q++ {
				s := (w + q) % 4
				res, _, err := svc.TopK(s, 10)
				if err != nil {
					errs <- err
					return
				}
				for i := range want[s] {
					if res[i] != want[s][i] {
						errs <- fmt.Errorf("worker %d query %d subject %d rank %d: %+v vs %+v", w, q, s, i, res[i], want[s][i])
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := svc.QueryStats()
	if st.CacheHits < 700 {
		t.Fatalf("hot-subject workload barely hit the cache: %+v", st)
	}
	if err := svc.Ingest(0, tags.MustPost(3)); err != nil {
		t.Fatal(err)
	}
	assertQueryOracle(t, svc, []int{0, 1, 2, 3}, 10)
}
